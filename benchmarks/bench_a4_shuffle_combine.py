"""A4 ablation — the shuffle fast path: combiners, blocks, range sort.

The tentpole claim: on a skewed ``reduce_by_key`` workload, map-side
combiners cut the records crossing the exchange by at least 5× while
changing *nothing* about the job's result — byte-identical output with
combining on or off, on every backend. This module both pins that claim
as pytest-benchmark tests and, run standalone, writes the
``BENCH_engine.json`` perf-trajectory file that ``tools/check.sh``
produces for every PR::

    PYTHONPATH=src python benchmarks/bench_a4_shuffle_combine.py \
        --smoke --json benchmarks/out/BENCH_engine.json

The workload's functions are module-level so they pickle — the process
backend must actually ship them (and sealed ShuffleBlocks), not fall
back in-driver.
"""

import argparse
import json
import operator
import os
import time

import pytest

from repro.engine.backends import BACKENDS
from repro.engine.context import SparkLiteContext

ROWS = 60_000
PARTITIONS = 8
#: skewed key space: most rows pile onto a handful of hot keys, the way
#: follower counts pile onto a few hub investors in the crawl graph
_HOT_KEYS = 8


def _skewed_pair(x: int):
    """(key, 1) pairs with a power-law-ish hot-key skew (picklable)."""
    if x % 4:
        return (x % _HOT_KEYS, 1)          # 75% of rows on 8 hot keys
    return (_HOT_KEYS + x % 24, 1)         # the rest on a cold tail


def _count_job(sc: SparkLiteContext, rows: int):
    return (sc.parallelize(range(rows), PARTITIONS)
            .map(_skewed_pair)
            .reduce_by_key(operator.add)
            .collect())


def _run(backend: str, rows: int, combine: bool,
         compress: bool = False, rounds: int = 1):
    """One measured configuration → (sorted result, metrics dict, best s)."""
    times = []
    with SparkLiteContext(parallelism=4, backend=backend,
                          shuffle_combine=combine,
                          shuffle_compress=compress) as sc:
        result = _count_job(sc, rows)  # warm-up
        for _ in range(rounds):
            start = time.perf_counter()
            result = _count_job(sc, rows)
            times.append(time.perf_counter() - start)
        metrics = sc.last_job_metrics.as_dict(include_stages=True)
    return sorted(result), metrics, min(times)


# ------------------------------------------------------------------ pytest
@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_a4_combiner_cuts_shuffle_volume(benchmark, backend):
    """≥5× fewer records cross the exchange with combining on."""
    result, metrics, _ = benchmark.pedantic(
        lambda: _run(backend, 20_000, combine=True), rounds=1, iterations=1)
    assert metrics["shuffle_records"] == 20_000        # pre-combine: raw
    assert metrics["shuffle_records_moved"] * 5 <= metrics["shuffle_records"]
    assert metrics["fallbacks"] == 0
    expected_keys = {_skewed_pair(x)[0] for x in range(20_000)}
    assert len(result) == len(expected_keys)


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_a4_combine_on_off_identical(backend):
    """Byte-identical results, combiners on vs. off, every backend."""
    on, m_on, _ = _run(backend, 8_000, combine=True)
    off, m_off, _ = _run(backend, 8_000, combine=False)
    assert repr(on) == repr(off)
    assert m_on["shuffle_records"] == m_off["shuffle_records"]
    assert m_on["shuffle_records_moved"] < m_off["shuffle_records_moved"]


def test_a4_compression_shrinks_blocks():
    """Compressed shuffle bytes < raw serialized bytes on wide rows."""
    with SparkLiteContext(parallelism=2, backend="serial",
                          shuffle_compress=True,
                          shuffle_compress_threshold=64) as sc:
        (sc.parallelize(range(4_000), 4)
         .map(lambda x: (x % 3, "payload-" * 20 + str(x % 7)))
         .group_by_key()
         .collect())
        metrics = sc.last_job_metrics
    assert metrics.shuffle_bytes_raw > 0
    assert metrics.shuffle_bytes < metrics.shuffle_bytes_raw


# --------------------------------------------------------------- standalone
def _bench_payload(rows: int, rounds: int) -> dict:
    """The BENCH_engine.json payload: A4 combine ablation + A1 sweep."""
    from bench_a1_engine_scaling import _sweep_one

    a4 = {}
    baseline = None
    for backend in sorted(BACKENDS):
        on_result, on_metrics, on_best = _run(
            backend, rows, combine=True, rounds=rounds)
        off_result, off_metrics, off_best = _run(
            backend, rows, combine=False, rounds=rounds)
        assert repr(on_result) == repr(off_result), \
            f"combine changed results on {backend}"
        if baseline is None:
            baseline = on_result
        assert repr(on_result) == repr(baseline), \
            f"backend {backend} disagrees with serial"
        reduction = (off_metrics["shuffle_records_moved"]
                     / max(1, on_metrics["shuffle_records_moved"]))
        a4[backend] = {
            "rows": rows,
            "records_shuffled_raw": on_metrics["shuffle_records"],
            "records_moved_combined": on_metrics["shuffle_records_moved"],
            "records_moved_uncombined": off_metrics["shuffle_records_moved"],
            "record_reduction_x": round(reduction, 2),
            "shuffle_bytes_combined": on_metrics["shuffle_bytes"],
            "shuffle_bytes_uncombined": off_metrics["shuffle_bytes"],
            "wall_s_combined": round(on_best, 4),
            "wall_s_uncombined": round(off_best, 4),
        }

    a1 = [_sweep_one(backend, max(rows // 3, 1_000), PARTITIONS,
                     4, rounds) for backend in sorted(BACKENDS)]
    serial_best = next(e for e in a1 if e["backend"] == "serial")
    for entry in a1:
        entry["speedup_vs_serial"] = round(
            serial_best["wall_s_best"] / entry["wall_s_best"], 3)

    return {
        "benchmark": "engine-shuffle-fast-path",
        "a4_combine": a4,
        "a1_backends": [
            {k: e[k] for k in ("backend", "rows", "partitions",
                               "wall_s_best", "speedup_vs_serial")}
            | {"shuffle_records": e["job_metrics"]["shuffle_records"],
               "shuffle_records_moved":
                   e["job_metrics"]["shuffle_records_moved"]}
            for e in a1],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the shuffle fast path: map-side combine "
                    "ablation plus a backend sweep; write BENCH_engine.json.")
    parser.add_argument("--rows", type=int, default=ROWS)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: few rows, one round")
    parser.add_argument("--json", metavar="FILE",
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows, args.rounds = min(args.rows, 12_000), 1
    if args.rows < 1 or args.rounds < 1:
        parser.error("--rows/--rounds must be >= 1")

    payload = _bench_payload(args.rows, args.rounds)
    for backend, row in payload["a4_combine"].items():
        print(f"{backend:>8}: {row['records_shuffled_raw']} recs → "
              f"{row['records_moved_combined']} moved "
              f"({row['record_reduction_x']}x fewer than uncombined), "
              f"{row['wall_s_combined']:.3f}s vs "
              f"{row['wall_s_uncombined']:.3f}s uncombined")
    for entry in payload["a1_backends"]:
        print(f"{entry['backend']:>8}: {entry['wall_s_best']:.3f}s "
              f"({entry['speedup_vs_serial']}x vs serial)")

    worst = min(row["record_reduction_x"]
                for row in payload["a4_combine"].values())
    if worst < 5.0:
        print(f"FAST PATH REGRESSION: combine reduction {worst}x < 5x")
        return 1
    if args.json:
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
