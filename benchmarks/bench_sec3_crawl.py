"""E8 / §3 — the data-collection pipeline itself.

Paper populations (full scale): 744,036 AngelList companies; 10,156
CrunchBase organizations; 37,761 Facebook and 70,563 Twitter profiles;
1,109,441 users with 4.3% investors / 18.3% founders / 44.2% employees.

The timed section runs the complete pipeline (BFS + augmentation +
enrichment) on a tiny world; the population comparison is printed from
the session's 1/16-scale crawl.
"""

from benchmarks.conftest import BENCH_SEED, paper_row
from repro.core.platform import ExploratoryPlatform
from repro.world.config import WorldConfig
from repro.world.generator import generate_world


def test_sec3_full_crawl_pipeline(benchmark, bench_platform):
    tiny = generate_world(WorldConfig.tiny(seed=BENCH_SEED))

    def crawl_tiny():
        platform = ExploratoryPlatform(tiny)
        try:
            return platform.run_full_crawl()
        finally:
            platform.close()

    benchmark.pedantic(crawl_tiny, rounds=3, iterations=1)

    summary = bench_platform.crawl_summary
    world = bench_platform.world
    scale = world.config.scale
    users = list(world.users.values())
    investors = sum(1 for u in users if "investor" in u.roles)
    founders = sum(1 for u in users if "founder" in u.roles)
    employees = sum(1 for u in users if "employee" in u.roles)

    print(f"\n§3 — crawl populations at scale {scale:.4f}")
    print(paper_row("AngelList companies", f"744,036 × {scale:.4f}",
                    f"{summary.angellist.startups:,}"))
    print(paper_row("AngelList users", f"1,109,441 × {scale:.4f}",
                    f"{summary.angellist.users:,}"))
    print(paper_row("CrunchBase organizations", f"10,156 × {scale:.4f}",
                    f"{summary.crunchbase.records:,}"))
    print(paper_row("Facebook profiles", f"37,761 × {scale:.4f}",
                    f"{summary.facebook.fetched:,}"))
    print(paper_row("Twitter profiles", f"70,563 × {scale:.4f}",
                    f"{summary.twitter.fetched:,}"))
    print(paper_row("% investors", "4.3%",
                    f"{100 * investors / len(users):.1f}%"))
    print(paper_row("% founders", "18.3%",
                    f"{100 * founders / len(users):.1f}%"))
    print(paper_row("% employees", "44.2%",
                    f"{100 * employees / len(users):.1f}%"))
    print(paper_row("BFS rounds", "several",
                    f"{len(summary.angellist.rounds)}"))
    print(paper_row("total API requests", "—",
                    f"{summary.total_requests:,}"))
    print(paper_row("simulated crawl duration", "—",
                    f"{summary.angellist.sim_duration / 3600:.1f} h "
                    "(AngelList BFS)"))

    # BFS reaches everything connected to the raising-startup seeds; a
    # handful of isolated follow pockets may be missed, as the paper's
    # own crawl missed part of AngelList ("more than 700K startups").
    assert summary.angellist.startups >= 0.999 * len(world.companies)
    assert summary.angellist.users >= 0.999 * len(world.users)
    assert abs(100 * investors / len(users) - 4.3) < 1.0
    assert abs(100 * founders / len(users) - 18.3) < 2.0
    assert abs(100 * employees / len(users) - 44.2) < 3.0
    fb_rate = summary.facebook.fetched / summary.angellist.startups
    tw_rate = summary.twitter.fetched / summary.angellist.startups
    assert abs(fb_rate - 37_761 / 744_036) < 0.02
    assert abs(tw_rate - 70_563 / 744_036) < 0.02
    assert len(summary.angellist.rounds) >= 3
