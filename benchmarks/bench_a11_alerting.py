"""A11 — chaos-hardened standing queries on the serve tier.

Four gates, each of which fails the benchmark (non-zero exit):

* **chaos correctness** — with the ``alert-chaos`` profile active
  (subscriber kills, dropped acks, duplicated deliveries, probabilistic
  ingest kills) plus a *forced* mid-run ingest kill at a derived unit's
  ``mid-land`` crash point, every event matched by the offline
  full-rescan oracle is delivered at least once, and after idempotent
  redelivery dedupe no subscriber observes a single duplicate effect;
* **fair-share delivery** — a tenant with 100x subscriber volume rides
  the same per-tenant token buckets and WFQ as interactive queries (as
  bulk-priority tickets): interactive p99 stays inside its deadline and
  every compliant tenant keeps >= 90% of its weighted entitlement;
* **poison quarantine** — a subscriber that never acks is quarantined
  after ``max_delivery_attempts`` without stalling the outbox for
  anyone else;
* **determinism** — two same-seed chaos runs (ingest kills, retries,
  backoff and all) produce byte-identical delivery logs and effects.

Run standalone it writes ``BENCH_alerting.json``::

    PYTHONPATH=src python benchmarks/bench_a11_alerting.py \
        --smoke --json benchmarks/out/BENCH_alerting.json
"""

import argparse
import json

import pytest

from repro.core.platform import ExploratoryPlatform
from repro.net.faults import FaultSchedule
from repro.serve.alerting import rescan_oracle
from repro.serve.loadgen import LoadProfile, generate_schedule
from repro.serve.outbox import DeliveryOutbox, Subscriber
from repro.serve.subscriptions import (KIND_COMMUNITY_INVESTOR,
                                       KIND_COMPANY_FUNDING,
                                       KIND_NEIGHBORHOOD_FOLLOW)
from repro.serve.tenancy import FairShareAdmission, Tenant
from repro.util.clock import SimClock
from repro.util.errors import IngestKilled
from repro.world.config import WorldConfig

DAYS = 10
SMOKE_DAYS = 6
CHAOS_SEED = 7
#: forced SIGKILL-equivalent mid-run: the derived unit dies between its
#: two dataset lands, the nastiest window for exactly-once alerting
KILL_UNIT = "day-0002:derived"
KILL_STATE = "mid-land"
#: healthy subscribers under chaos fail one attempt with p ~= 0.18;
#: eight consecutive failures (~1e-6) would be a real poison signal
MAX_ATTEMPTS = 8
RETRY_BASE_S = 2.0
#: subscription population per predicate family
COMPANY_SUBS = 30
USER_SUBS = 40
MIN_ORACLE = 20
MAX_RESUMES = 60

# fair-share gate
QPS_LIMIT = 40.0
QUEUE_DEPTH = 16
FAIR_DURATION_S = 3.0
TENANT_WEIGHTS = {"t0": 1.0, "t1": 2.0, "t2": 1.0}
SUBSCRIBER_MULTIPLE = 100.0   # t0's ticket load vs its entitled rate
INTERACTIVE_FRACTION = 0.8    # compliant tenants' offered load vs share
QUERY_SERVICE_S = 0.005
DELIVERY_SERVICE_S = 0.002
INTERACTIVE_DEADLINE_S = 0.25
FAIR_SHARE_FLOOR = 0.90

POISON_ATTEMPTS = 6


def _build_platform() -> ExploratoryPlatform:
    platform = ExploratoryPlatform.over_new_world(WorldConfig.tiny())
    platform.config.max_delivery_attempts = MAX_ATTEMPTS
    platform.config.alert_retry_base_s = RETRY_BASE_S
    platform.config.faults = FaultSchedule.alert_chaos(1.0,
                                                       seed=CHAOS_SEED)
    platform.run_full_crawl()
    platform.serve_dataset()
    return platform


class ChaosRun:
    """Everything one alert-chaos ingest run produced."""

    def __init__(self, platform, registry, evaluator, outbox,
                 subscribers, scheduler, kills):
        self.platform = platform
        self.registry = registry
        self.evaluator = evaluator
        self.outbox = outbox
        self.subscribers = subscribers
        self.scheduler = scheduler
        self.kills = kills
        self.oracle = rescan_oracle(registry, platform.serve_dataset(),
                                    scheduler.derived)


def _run_alert_chaos(days: int) -> ChaosRun:
    """Gates (a)+(d): chaos ingest with standing queries attached."""
    platform = _build_platform()
    dataset = platform.serve_dataset()
    registry = platform.subscription_registry()
    subscribers = {}

    def ensure(sub):
        subscribers.setdefault(
            sub.subscriber_id,
            Subscriber(sub.subscriber_id, tenant=sub.tenant))

    for label in sorted(dataset.community_members):
        ensure(registry.register("t1", KIND_COMMUNITY_INVESTOR,
                                 int(label)))
    for company in dataset.keys_for("company")[:COMPANY_SUBS]:
        ensure(registry.register("t0", KIND_COMPANY_FUNDING,
                                 int(company)))
    for user in sorted(dataset.follows_out)[:USER_SUBS]:
        ensure(registry.register("t2", KIND_NEIGHBORHOOD_FOLLOW,
                                 int(user)))

    _, evaluator, outbox = platform.alerting_stack(
        registry=registry, subscribers=subscribers, seed=CHAOS_SEED)
    platform.config.faults.force_ingest_kill(KILL_UNIT, KILL_STATE)

    kills = 0
    scheduler = platform.ingest_pipeline(alerting=evaluator)
    while True:
        try:
            scheduler.run_until_day(days)
            break
        except IngestKilled:
            kills += 1
            if kills > MAX_RESUMES:
                raise
            # a fresh scheduler over the same storage: ledger replay
            # re-commits pending units and re-emits their notifications
            scheduler = platform.ingest_pipeline(alerting=evaluator)
    outbox.drain()
    return ChaosRun(platform, registry, evaluator, outbox, subscribers,
                    scheduler, kills)


# ---------------------------------------------------------------- contracts
def check_chaos_contract(run: ChaosRun) -> list:
    """Gate (a): delivered set == oracle, exactly-once in effect."""
    violations = []
    if run.kills < 1:
        violations.append(f"the forced ingest kill at {KILL_UNIT} "
                          f"[{KILL_STATE}] never fired")
    if len(run.oracle) < MIN_ORACLE:
        violations.append(f"oracle matched only {len(run.oracle)} "
                          f"events (< {MIN_ORACLE}) — the gate is "
                          f"not exercising anything")

    delivered = set(run.outbox.delivered_ids())
    missing = run.oracle - delivered
    extra = delivered - run.oracle
    if missing:
        violations.append(f"{len(missing)} oracle-matched events never "
                          f"delivered (e.g. {sorted(missing)[:3]})")
    if extra:
        violations.append(f"{len(extra)} delivered events the full-"
                          f"rescan oracle never matched "
                          f"(e.g. {sorted(extra)[:3]})")

    expected_by_sid = {}
    for notification in run.evaluator.emitted:
        expected_by_sid.setdefault(notification.subscriber_id,
                                   set()).add(notification.id)
    for sid, subscriber in sorted(run.subscribers.items()):
        if len(subscriber.effects) != len(set(subscriber.effects)):
            violations.append(f"subscriber {sid} observed duplicate "
                              f"effects after dedupe")
        if len(subscriber.received) < len(subscriber.effects):
            violations.append(f"subscriber {sid} has more effects than "
                              f"channel deliveries — accounting broke")
        expected = expected_by_sid.get(sid, set()) & run.oracle
        if set(subscriber.effects) != expected:
            violations.append(
                f"subscriber {sid} effects diverge from its oracle "
                f"slice ({len(subscriber.effects)} vs {len(expected)})")

    stats = run.outbox.stats
    if stats.failures == 0 or stats.acks_dropped == 0 \
            or stats.dup_deliveries == 0:
        violations.append(
            f"alert chaos never fired all three fault kinds "
            f"(failures={stats.failures}, acks_dropped="
            f"{stats.acks_dropped}, dups={stats.dup_deliveries})")
    if stats.attempts <= stats.delivered:
        violations.append("no delivery ever needed a retry — the chaos "
                          "run degenerated into the happy path")
    if run.outbox.quarantined():
        violations.append(f"healthy subscribers quarantined: "
                          f"{sorted(run.outbox.quarantined())}")
    if run.outbox.pending():
        violations.append(f"{len(run.outbox.pending())} notifications "
                          f"still pending after drain")
    return violations


def check_determinism(first: ChaosRun, second: ChaosRun) -> list:
    """Gate (d): same seed, byte-identical delivery log included."""
    violations = []
    if first.outbox.log_json() != second.outbox.log_json():
        violations.append("same-seed delivery logs differ")
    if first.outbox.delivered_ids() != second.outbox.delivered_ids():
        violations.append("same-seed delivered sets differ")
    effects_a = {sid: s.effects for sid, s in first.subscribers.items()}
    effects_b = {sid: s.effects for sid, s in second.subscribers.items()}
    if effects_a != effects_b:
        violations.append("same-seed subscriber effects differ")
    if first.oracle != second.oracle:
        violations.append("same-seed oracle sets differ — the ingest "
                          "timeline itself is nondeterministic")
    return violations


def _run_fair_share(platform: ExploratoryPlatform):
    """Gate (b): 100x delivery tickets vs interactive queries, one door.

    A deterministic replay loop drives a single service pipe: every
    arrival (query or delivery ticket) is offered to the *same*
    FairShareAdmission; admitted work executes in WFQ pop order with
    fixed service costs. Deliveries the bucket clips are deferred —
    deferral is back-pressure, not a failed attempt.
    """
    dataset = platform.serve_dataset()
    total_weight = sum(TENANT_WEIGHTS.values())
    tenants = [Tenant(t, w) for t, w in sorted(TENANT_WEIGHTS.items())]
    admission = FairShareAdmission(QPS_LIMIT, QUEUE_DEPTH, tenants,
                                   burst=QPS_LIMIT * 0.25)
    clock = SimClock()
    subscribers = {"t0:default": Subscriber("t0:default", tenant="t0")}
    outbox = DeliveryOutbox(platform.dfs, clock, subscribers,
                            root="/serve/outbox-fair", seed=1)

    from repro.serve.alerting import Notification
    t0_share_qps = QPS_LIMIT * TENANT_WEIGHTS["t0"] / total_weight
    tickets = int(t0_share_qps * SUBSCRIBER_MULTIPLE * FAIR_DURATION_S)
    arrivals = []
    for i in range(tickets):
        note = Notification(
            id=f"ntf-sub-9{i:05d}-fair-evt:{i}", sub_id=f"sub-9{i:05d}",
            tenant="t0", subscriber_id="t0:default",
            kind="company_funding", key=i, unit="fair",
            entity=f"evt:{i}")
        outbox.enqueue(note)
        arrivals.append((i * FAIR_DURATION_S / tickets, 1, "ticket",
                         outbox.ticket(note.id, now=0.0)))
    for i, tenant_id in enumerate(("t1", "t2")):
        share = QPS_LIMIT * TENANT_WEIGHTS[tenant_id] / total_weight
        profile = LoadProfile(qps=share * INTERACTIVE_FRACTION,
                              duration_s=FAIR_DURATION_S,
                              seed=CHAOS_SEED + 100 + i)
        for request in generate_schedule(profile, dataset):
            request.tenant = tenant_id
            request.priority = "interactive"
            arrivals.append((request.arrival_s, 0, "query", request))
    arrivals.sort(key=lambda a: (a[0], a[1], getattr(a[3], "nid", "")))

    served = {t: 0 for t in TENANT_WEIGHTS}
    offered = {t: 0 for t in TENANT_WEIGHTS}
    sheds = {t: 0 for t in TENANT_WEIGHTS}
    latencies = []            # interactive only
    server_free = 0.0

    def execute(item, start):
        cost = (DELIVERY_SERVICE_S if hasattr(item, "nid")
                else QUERY_SERVICE_S)
        finish = start + cost
        tenant = item.tenant
        served[tenant] += 1
        if hasattr(item, "nid"):
            outbox.attempt(item.nid)
        else:
            latencies.append(finish - item.arrival_s)
        return finish

    for arrival_s, _, kind, item in arrivals:
        # the server catches up on queued work before this arrival
        while server_free <= arrival_s:
            queued = admission.pop()
            if queued is None:
                break
            server_free = execute(item=queued,
                                  start=max(server_free, arrival_s))
        offered[item.tenant] += 1
        decision = admission.offer(item, now=arrival_s)
        if decision.status != "admit":
            sheds[item.tenant] += 1
            if kind == "ticket":
                outbox.defer(item.nid, arrival_s + 1.0)
    now = FAIR_DURATION_S
    while True:
        queued = admission.pop()
        if queued is None:
            break
        server_free = max(server_free, now)
        server_free = execute(item=queued, start=server_free)
    return {"served": served, "offered": offered, "sheds": sheds,
            "latencies": sorted(latencies), "outbox": outbox}


def check_fair_share_contract(fair: dict) -> list:
    violations = []
    latencies = fair["latencies"]
    if not latencies:
        violations.append("no interactive queries ran at all")
        return violations
    p99 = latencies[min(len(latencies) - 1,
                        int(0.99 * len(latencies)))]
    if p99 > INTERACTIVE_DEADLINE_S:
        violations.append(
            f"interactive p99 {1000 * p99:.1f} ms blew the "
            f"{1000 * INTERACTIVE_DEADLINE_S:.0f} ms deadline under "
            f"100x subscriber load")
    total_weight = sum(TENANT_WEIGHTS.values())
    for tenant_id in ("t1", "t2"):
        share = QPS_LIMIT * TENANT_WEIGHTS[tenant_id] / total_weight
        entitled = min(fair["offered"][tenant_id],
                       share * FAIR_DURATION_S)
        if fair["served"][tenant_id] < FAIR_SHARE_FLOOR * entitled:
            violations.append(
                f"compliant tenant {tenant_id} starved: served "
                f"{fair['served'][tenant_id]} < "
                f"{FAIR_SHARE_FLOOR:.0%} of entitlement "
                f"({entitled:.0f})")
    t0_share = QPS_LIMIT * TENANT_WEIGHTS["t0"] / total_weight
    entitled_t0 = t0_share * FAIR_DURATION_S
    if fair["outbox"].stats.delivered < FAIR_SHARE_FLOOR * entitled_t0:
        violations.append(
            f"delivery tenant t0 under-served its own share: "
            f"{fair['outbox'].stats.delivered} delivered < "
            f"{FAIR_SHARE_FLOOR:.0%} of {entitled_t0:.0f}")
    if fair["sheds"]["t0"] == 0:
        violations.append("t0's 100x ticket flood was never clipped — "
                          "per-tenant buckets are not engaging")
    if fair["sheds"]["t1"] + fair["sheds"]["t2"] > \
            0.1 * (fair["offered"]["t1"] + fair["offered"]["t2"]):
        violations.append("compliant interactive traffic was shed in "
                          "bulk — the ticket flood leaked across "
                          "tenant buckets")
    return violations


def _run_poison(platform: ExploratoryPlatform):
    """Gate (c): a never-acking subscriber must not stall the outbox."""
    from repro.serve.alerting import Notification
    clock = SimClock()
    subscribers = {
        "t0:poison": Subscriber("t0:poison", tenant="t0", poison=True),
        "t0:healthy": Subscriber("t0:healthy", tenant="t0"),
        "t1:default": Subscriber("t1:default", tenant="t1"),
    }
    outbox = DeliveryOutbox(
        platform.dfs, clock, subscribers, root="/serve/outbox-poison",
        faults=FaultSchedule.alert_chaos(1.0, seed=CHAOS_SEED + 1),
        seed=CHAOS_SEED + 1, max_delivery_attempts=POISON_ATTEMPTS)
    notes = {"t0:poison": [], "t0:healthy": [], "t1:default": []}
    for i, sid in enumerate(sorted(notes) * 4):
        note = Notification(
            id=f"ntf-sub-8{i:05d}-poison-evt:{i}",
            sub_id=f"sub-8{i:05d}", tenant=sid.split(":")[0],
            subscriber_id=sid, kind="company_funding", key=i,
            unit="poison", entity=f"evt:{i}")
        outbox.enqueue(note)
        notes[sid].append(note.id)
    outbox.drain()
    return outbox, notes, subscribers


def check_poison_contract(outbox, notes, subscribers) -> list:
    violations = []
    if not outbox.is_quarantined("t0:poison"):
        violations.append("the poison subscriber was never quarantined")
    parked = outbox.quarantined().get("t0:poison", [])
    if sorted(parked) != sorted(notes["t0:poison"]):
        violations.append(f"quarantine parked {len(parked)} of "
                          f"{len(notes['t0:poison'])} poison letters")
    for sid in ("t0:healthy", "t1:default"):
        if sorted(subscribers[sid].effects) != sorted(notes[sid]):
            violations.append(f"healthy subscriber {sid} lost "
                              f"deliveries to the poison neighbour")
    if outbox.pending():
        violations.append("outbox stalled: pending letters remain "
                          "after the poison quarantine")
    cap = POISON_ATTEMPTS * len(notes["t0:poison"])
    poison_attempts = sum(1 for e in outbox.delivery_log
                          if e[1] == "t0:poison")
    if poison_attempts > cap:
        violations.append(f"poison subscriber burned {poison_attempts} "
                          f"attempts (> cap {cap}) before quarantine")
    return violations


# ------------------------------------------------------------------ pytest
@pytest.fixture(scope="module")
def chaos_run():
    run = _run_alert_chaos(SMOKE_DAYS)
    yield run
    run.platform.close()


def test_a11_chaos_correctness(chaos_run):
    assert not check_chaos_contract(chaos_run)


def test_a11_fair_share(chaos_run):
    assert not check_fair_share_contract(
        _run_fair_share(chaos_run.platform))


def test_a11_poison_quarantine(chaos_run):
    outbox, notes, subscribers = _run_poison(chaos_run.platform)
    assert not check_poison_contract(outbox, notes, subscribers)


def test_a11_same_seed_runs_identical(chaos_run):
    rerun = _run_alert_chaos(SMOKE_DAYS)
    try:
        assert not check_determinism(chaos_run, rerun)
    finally:
        rerun.platform.close()


# --------------------------------------------------------------- standalone
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Kill subscribers, drop acks, duplicate deliveries "
                    "and the ingest scheduler itself; demand oracle-"
                    "exact delivery, fair shares under 100x subscriber "
                    "load, poison quarantine, and byte-identical "
                    "replays.")
    parser.add_argument("--days", type=int, default=DAYS,
                        help="simulated ingest days per chaos run")
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: fewer ingest days")
    parser.add_argument("--json", metavar="FILE",
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.days = min(args.days, SMOKE_DAYS)

    first = _run_alert_chaos(args.days)
    second = _run_alert_chaos(args.days)
    try:
        violations = check_chaos_contract(first)
        violations += check_determinism(first, second)
        fair = _run_fair_share(first.platform)
        violations += check_fair_share_contract(fair)
        poison_outbox, notes, poison_subs = _run_poison(first.platform)
        violations += check_poison_contract(poison_outbox, notes,
                                            poison_subs)

        stats = first.outbox.stats
        estats = first.evaluator.stats
        latencies = fair["latencies"]
        p99 = latencies[min(len(latencies) - 1,
                            int(0.99 * len(latencies)))] if latencies \
            else float("nan")
        print(f"chaos run: {len(first.registry)} subscriptions, "
              f"{len(first.oracle)} oracle events, "
              f"{stats.delivered} delivered in {stats.attempts} "
              f"attempts, {first.kills} ingest kill(s) survived")
        print(f"evaluator: {estats.units_evaluated} derived units, "
              f"{estats.records_scanned} delta records scanned, "
              f"{estats.index_rebuilds} index rebuilds, "
              f"{stats.duplicates_suppressed} replay re-emissions "
              f"absorbed")
        print(f"chaos: {stats.failures} subscriber kills, "
              f"{stats.acks_dropped} dropped acks, "
              f"{stats.dup_deliveries} channel dups "
              f"({stats.effects_deduped} effects deduped)")
        print(f"fair share: {fair['outbox'].stats.delivered} of "
              f"{fair['offered']['t0']} tickets delivered, "
              f"t1 served {fair['served']['t1']}/"
              f"{fair['offered']['t1']}, t2 served "
              f"{fair['served']['t2']}/{fair['offered']['t2']}, "
              f"interactive p99 {1000 * p99:.1f} ms")
        print(f"poison: quarantined="
              f"{sorted(poison_outbox.quarantined())}")
        deterministic = not check_determinism(first, second)
        print(f"deterministic={deterministic}")

        payload = {
            "benchmark": "serve-alerting",
            "days": args.days,
            "subscriptions": len(first.registry),
            "oracle_events": len(first.oracle),
            "delivered": stats.delivered,
            "attempts": stats.attempts,
            "ingest_kills": first.kills,
            "subscriber_kills": stats.failures,
            "acks_dropped": stats.acks_dropped,
            "dup_deliveries": stats.dup_deliveries,
            "effects_deduped": stats.effects_deduped,
            "replay_reemissions": stats.duplicates_suppressed,
            "units_evaluated": estats.units_evaluated,
            "delta_records_scanned": estats.records_scanned,
            "fair_share": {
                "tickets_offered": fair["offered"]["t0"],
                "tickets_delivered": fair["outbox"].stats.delivered,
                "t1_served": fair["served"]["t1"],
                "t2_served": fair["served"]["t2"],
                "interactive_p99_ms": round(1000 * p99, 3),
            },
            "deterministic": deterministic,
            "violations": violations,
        }
        if args.json:
            import os
            os.makedirs(os.path.dirname(args.json) or ".",
                        exist_ok=True)
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            print(f"wrote {args.json}")
    finally:
        first.platform.close()
        second.platform.close()
    for violation in violations:
        print(f"ALERTING REGRESSION: {violation}")
    return 1 if violations else 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
