"""Benchmark fixtures.

The heavy artifacts — the 1/16-scale world (≈46.5k companies, ≈69k
users, the scale EXPERIMENTS.md reports against) and its full crawl —
are built once per benchmark session. Individual benchmarks then time
the *analysis* under measurement, not the shared setup.
"""

from __future__ import annotations

import pytest

from repro.core.platform import ExploratoryPlatform
from repro.world.config import WorldConfig
from repro.world.generator import generate_world

BENCH_SEED = 20160626


@pytest.fixture(scope="session")
def bench_world():
    return generate_world(WorldConfig.default(seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_platform(bench_world):
    platform = ExploratoryPlatform(bench_world)
    platform.run_full_crawl()
    yield platform
    platform.close()


@pytest.fixture(scope="session")
def bench_graph(bench_platform):
    return bench_platform.investor_graph()


@pytest.fixture(scope="session")
def bench_study(bench_platform, bench_graph):
    """The §5 community study, shared by the Figure 4/5/7 benchmarks."""
    from repro.analysis.strength import run_community_study
    return run_community_study(
        bench_graph,
        num_communities=bench_platform.world.config.num_communities,
        global_pairs=100_000, seed=BENCH_SEED, coda_iters=40)


@pytest.fixture(scope="session")
def tiny_crawl_setup():
    """A small world + servers for crawl-throughput benchmarks."""
    from repro.sources.hub import SourceHub
    world = generate_world(WorldConfig.tiny(seed=BENCH_SEED))
    return world


def paper_row(name: str, paper: str, measured: str) -> str:
    return f"  {name:<46} paper={paper:<18} measured={measured}"
