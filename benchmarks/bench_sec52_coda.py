"""E4 / §5.2 — CoDA community detection.

Paper: investors with ≥4 investments, grouped into 96 communities with
average size 190.2 at full scale. Community count and size scale with
sqrt(world scale); asserted here is that CoDA produces a healthy cover
of multi-member communities over the filtered graph.
"""

from benchmarks.conftest import BENCH_SEED, paper_row


def test_sec52_coda_detection(benchmark, bench_platform, bench_graph):
    from repro.community.coda import CoDA

    filtered = bench_graph.filter_investors(4)
    num_communities = bench_platform.world.config.num_communities

    result = benchmark.pedantic(
        lambda: CoDA(num_communities=num_communities, max_iters=40,
                     seed=BENCH_SEED).fit(filtered),
        rounds=3, iterations=1)

    scale = bench_platform.world.config.scale
    print("\n§5.2 — CoDA over the deg≥4 bipartite graph")
    print(paper_row("input investors (deg≥4)", "—",
                    f"{filtered.num_investors:,}"))
    print(paper_row("communities", f"96 × sqrt({scale:.3f})",
                    f"{result.num_communities}"))
    print(paper_row("average community size",
                    f"190.2 × sqrt({scale:.3f})",
                    f"{result.average_community_size:.1f}"))

    assert result.num_communities >= 0.5 * num_communities
    assert result.average_community_size >= 3.0
    covered = set().union(*result.investor_communities.values())
    assert len(covered) >= 0.2 * filtered.num_investors
