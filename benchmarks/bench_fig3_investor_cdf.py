"""E1 / Figure 3 — CDF of investments per investor.

Paper headline numbers: mean 3.3 investments, median 1, max ≈ 1000 (at
full scale), mean follows 247. Max and follow fan-out scale with
sqrt(world scale) by design; the distribution *shape* (long tail, median
1) is scale-free and asserted here.
"""

import numpy as np

from benchmarks.conftest import paper_row


def test_fig3_investor_cdf(benchmark, bench_platform, bench_graph):
    from repro.analysis.investors import compute_investor_activity

    activity = benchmark.pedantic(
        lambda: compute_investor_activity(bench_platform.sc,
                                          bench_platform.dfs, bench_graph),
        rounds=3, iterations=1)

    scale = bench_platform.world.config.scale
    print("\nFigure 3 — investments per investor")
    print(activity.render_cdf())
    print(paper_row("mean investments", "3.3",
                    f"{activity.mean_investments:.2f}"))
    print(paper_row("median investments", "1",
                    f"{activity.median_investments:.0f}"))
    print(paper_row("max investments", f"~1000 × sqrt({scale:.3f})",
                    f"{activity.max_investments}"))
    print(paper_row("mean follows per investor", f"247 × sqrt({scale:.3f})",
                    f"{activity.mean_follows_per_investor:.1f}"))

    assert activity.median_investments == 1.0
    assert 2.0 < activity.mean_investments < 5.0
    assert activity.max_investments > 20 * activity.mean_investments
    assert activity.mean_follows_per_investor > 5 * activity.mean_investments
    # long tail: the CDF at the mean is already above 60%
    assert activity.investments_cdf(activity.mean_investments) > 0.6
