"""X1 / §7 — longitudinal snapshots and the causality panel.

The paper proposes daily tracking to separate engagement→funding from
funding→engagement. The world's dynamics plant both directions; the
panel analysis must recover them: pre-event engagement lift > 1 AND a
positive post-event follower bump (the confound).
"""

from benchmarks.conftest import BENCH_SEED, paper_row
from repro.analysis.longitudinal import analyze_snapshots
from repro.crawl.snapshots import SnapshotScheduler
from repro.dfs.filesystem import MiniDfs
from repro.sources.hub import SourceHub
from repro.world.config import WorldConfig
from repro.world.dynamics import WorldDynamics
from repro.world.generator import generate_world

DAYS = 30


def test_x1_longitudinal_panel(benchmark):
    def run_study():
        world = generate_world(WorldConfig.tiny(seed=BENCH_SEED))
        hub = SourceHub.from_world(world)
        dynamics = WorldDynamics(world, seed=BENCH_SEED,
                                 base_close_hazard=0.02,
                                 engagement_to_funding_lift=4.0)
        dfs = MiniDfs()
        SnapshotScheduler(hub, dynamics, dfs).run(days=DAYS)
        return analyze_snapshots(dfs, window=3)

    result = benchmark.pedantic(run_study, rounds=3, iterations=1)

    print(f"\n§7 — longitudinal panel over {DAYS} simulated days")
    print(paper_row("tracked startups", "—", f"{result.tracked_startups}"))
    print(paper_row("funding close events", "—", f"{result.close_events}"))
    print(paper_row("pre-event engagement lift", ">1 (planted causality)",
                    f"{result.pre_event_lift:.2f}x"))
    print(paper_row("post-event follower bump", ">0 (planted confound)",
                    f"{result.post_event_follower_bump:.1f}"))

    assert result.close_events > 0
    assert result.pre_event_lift > 1.0
    assert result.post_event_follower_bump > 0.0
