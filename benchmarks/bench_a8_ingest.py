"""A8 drill — kill-anywhere ingest resume is byte-identical and bounded.

The tentpole claim of the durable continuous-ingest tier: a scheduler
SIGKILL-equivalented at **any** ledger protocol state (pre-intent,
post-intent, mid-land, pre-commit, post-commit) of **any** work unit
resumes from the write-ahead ledger and converges to the *exact* bytes
an uninterrupted run produces — no lost records, no duplicated ones,
no stranded leases. A second measurement pins the incremental-recompute
claim: the delta-aware derived-dataset maintenance engine-scans each
source record at most once over the run's lifetime, where a daily full
rebuild scans the whole corpus every day.

Run standalone this writes the ``BENCH_ingest.json`` perf-trajectory
file that ``tools/check.sh`` produces for every PR::

    PYTHONPATH=src python benchmarks/bench_a8_ingest.py \
        --smoke --json benchmarks/out/BENCH_ingest.json
"""

import argparse
import json
import os
import time

import pytest

from repro.core.platform import ExploratoryPlatform, PlatformConfig
from repro.crawl.scheduler import CRASH_STATES
from repro.net.faults import FaultSchedule
from repro.util.errors import IngestKilled
from repro.world.config import WorldConfig
from repro.world.generator import generate_world

SCALE = 0.002
SEED = 7
DAYS = 3
#: the day whose units the drill kills (its work is mid-stream: day 1
#: already committed, day 3 still ahead)
KILL_DAY = 2
#: unit kinds that land datasets have a mid-land window; the other two
#: never touch an upsert manifest
LANDING_KINDS = ("snapshot", "frontier", "derived")
PURE_KINDS = ("advance", "discover")


def _platform():
    world = generate_world(WorldConfig(scale=SCALE, seed=SEED))
    return ExploratoryPlatform(
        world, config=PlatformConfig(engine_backend="serial"))


def _run(platform, kill=None, days=DAYS):
    """Run to ``days``, resuming across kills; returns drill evidence."""
    scheduler = platform.ingest_pipeline()
    if kill is not None:
        scheduler.faults = FaultSchedule.none()
        scheduler.faults.force_ingest_kill(*kill)
    kills = 0
    start = time.perf_counter()
    while True:
        try:
            report = scheduler.run_until_day(days)
            break
        except IngestKilled:
            kills += 1
            scheduler = platform.ingest_pipeline()
    wall = time.perf_counter() - start
    return {
        "scheduler": scheduler,
        "report": report,
        "kills": kills,
        "wall_s": wall,
        "bytes": {name: ds.canonical_bytes()
                  for name, ds in scheduler.dataset_map().items()},
        "dup_groups": {name: ds.duplicate_key_groups()
                       for name, ds in scheduler.dataset_map().items()},
        "live_leases": len(scheduler.ledger.live_leases()),
        "expired_leases": len(scheduler.ledger.expired_leases()),
        "pending_units": len(scheduler.ledger.pending_units()),
    }


def _kill_matrix(day=KILL_DAY):
    for kind in PURE_KINDS:
        for state in CRASH_STATES:
            if state != "mid-land":
                yield f"day-{day:04d}:{kind}", state
    for kind in LANDING_KINDS:
        for state in CRASH_STATES:
            yield f"day-{day:04d}:{kind}", state


def _raw_source_records(scheduler):
    """Lifetime record count of the derived pipeline's source deltas."""
    return sum(len(scheduler.dfs.read_text(path).splitlines())
               for ds in (scheduler.investments, scheduler.follow_edges)
               for path in ds.live_files())


# ------------------------------------------------------------------ pytest
@pytest.fixture(scope="module")
def baseline():
    platform = _platform()
    try:
        run = _run(platform)
        assert run["kills"] == 0
        yield run
    finally:
        platform.close()


@pytest.mark.chaos
@pytest.mark.parametrize("unit,state", list(_kill_matrix()))
def test_a8_kill_resume_byte_identical(unit, state, baseline):
    platform = _platform()
    try:
        run = _run(platform, kill=(unit, state))
        assert run["kills"] == 1, f"kill at {unit}@{state} never fired"
        assert run["bytes"] == baseline["bytes"]
        assert run["dup_groups"] == baseline["dup_groups"]
        assert run["live_leases"] == run["expired_leases"] == 0
        assert run["pending_units"] == 0
    finally:
        platform.close()


def test_a8_incremental_recompute_bounded(baseline):
    scanned = baseline["report"].derived_records_scanned
    raw = _raw_source_records(baseline["scheduler"])
    assert scanned == raw  # each source record scanned exactly once
    assert scanned < DAYS * max(raw, 1)  # vs a daily full rebuild


# --------------------------------------------------------------- standalone
def _bench_payload(days: int) -> dict:
    base_platform = _platform()
    try:
        base = _run(base_platform, days=days)
        scenarios = {}
        failures = []
        for unit, state in _kill_matrix():
            platform = _platform()
            try:
                run = _run(platform, kill=(unit, state), days=days)
                identical = run["bytes"] == base["bytes"]
                clean = (run["dup_groups"] == base["dup_groups"]
                         and run["live_leases"] == 0
                         and run["expired_leases"] == 0
                         and run["pending_units"] == 0)
                if not (identical and clean and run["kills"] == 1):
                    failures.append(f"{unit}@{state}")
                stats = run["report"].stats
                scenarios[f"{unit}@{state}"] = {
                    "kills": run["kills"],
                    "byte_identical": identical,
                    "state_clean": clean,
                    "units_redelivered": stats.units_redelivered,
                    "duplicate_lands_absorbed": stats.lands_skipped,
                    "leases_taken_over": stats.leases_taken_over,
                    "orphans_vacuumed": stats.vacuumed_files,
                    "wall_s": round(run["wall_s"], 4),
                }
            finally:
                platform.close()

        scanned = base["report"].derived_records_scanned
        raw = _raw_source_records(base["scheduler"])
        recompute = {
            "delta_records_scanned": scanned,
            "source_records": raw,
            "full_rebuild_records": days * raw,
            "scan_fraction_vs_rebuild": round(
                scanned / max(1, days * raw), 4),
        }
        payload = {
            "benchmark": "ingest-kill-anywhere-resume",
            "days": days,
            "baseline": {
                "wall_s": round(base["wall_s"], 4),
                "units_committed": base["report"].stats.units_committed,
                "dataset_keys": base["report"].dataset_keys,
            },
            "scenarios": scenarios,
            "incremental_recompute": recompute,
            "failures": failures,
        }
        return payload
    finally:
        base_platform.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Kill the ingest scheduler at every ledger state, "
                    "resume, and gate on byte-identical eventual state; "
                    "write BENCH_ingest.json.")
    parser.add_argument("--days", type=int, default=DAYS)
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: few days")
    parser.add_argument("--json", metavar="FILE",
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.days = min(args.days, DAYS)
    if args.days <= KILL_DAY:
        parser.error(f"--days must be > {KILL_DAY} (the drill kills "
                     f"day-{KILL_DAY} units mid-stream)")

    payload = _bench_payload(args.days)

    for name, row in sorted(payload["scenarios"].items()):
        verdict = ("ok" if row["byte_identical"] and row["state_clean"]
                   else "FAIL")
        print(f"{name:<32} kills={row['kills']} "
              f"redelivered={row['units_redelivered']} "
              f"dup_lands_absorbed={row['duplicate_lands_absorbed']} "
              f"{verdict}")
    rec = payload["incremental_recompute"]
    print(f"incremental recompute: {rec['delta_records_scanned']} delta "
          f"records scanned vs {rec['full_rebuild_records']} for daily "
          f"full rebuilds "
          f"({100 * rec['scan_fraction_vs_rebuild']:.1f}%)")

    if payload["failures"]:
        print(f"INGEST REGRESSION: {len(payload['failures'])} kill "
              f"scenario(s) diverged: {', '.join(payload['failures'])}")
        return 1
    if rec["delta_records_scanned"] > rec["source_records"]:
        print("INGEST REGRESSION: incremental recompute re-scanned "
              "source records")
        return 1
    if args.json:
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
