"""X4 / §2 — detected communities vs disclosed syndicates.

AngelList syndicates are the *disclosed* part of the community structure
the §5 analysis infers from co-investment. This benchmark reads
``syndicate_id`` off the crawled user profiles and checks that CoDA's
communities are far purer with respect to them than chance — detection
recovers syndicate cores even though it never saw the labels.
"""

from benchmarks.conftest import BENCH_SEED, paper_row
from repro.analysis.syndicates import (read_disclosed_syndicates,
                                       validate_communities)
from repro.community.coda import CoDA


def test_x4_syndicate_validation(benchmark, bench_platform, bench_graph):
    filtered = bench_graph.filter_investors(4)
    coda = CoDA(num_communities=bench_platform.world.config.num_communities,
                max_iters=40, seed=BENCH_SEED).fit(filtered)

    def validate():
        syndicates = read_disclosed_syndicates(bench_platform.sc,
                                               bench_platform.dfs)
        return validate_communities(coda.investor_communities, syndicates)

    result = benchmark.pedantic(validate, rounds=3, iterations=1)

    chance_purity = 1.0 / max(1, result.num_syndicates)
    print("\n§2 — communities vs disclosed syndicates")
    print(paper_row("disclosed syndicates", "—",
                    f"{result.num_syndicates}"))
    print(paper_row("disclosing investors", "≈60% of herders",
                    f"{result.disclosing_investors:,}"))
    print(paper_row("cover F1 vs syndicates", "—",
                    f"{result.cover_f1_score:.3f}"))
    print(paper_row("mean community purity",
                    f"chance ≈ {chance_purity:.3f}",
                    f"{result.mean_purity:.3f}"))

    assert result.num_syndicates > 0
    assert result.mean_purity > 5 * chance_purity
    assert result.cover_f1_score > 0.0
