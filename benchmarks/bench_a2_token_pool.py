"""A2 ablation — Twitter token-pool size vs crawl completion time.

The paper dodged the 180-calls/15-min limit by spreading tokens over
machines. This ablation fetches 1,000 profiles with 1, 4, and 16 tokens
and checks the simulated completion time falls roughly inversely with
pool size (until the pool stops being the bottleneck).
"""

import pytest

from benchmarks.conftest import BENCH_SEED, paper_row
from repro.crawl.client import ApiClient, AUTH_QUERY_ACCESS_TOKEN
from repro.crawl.tokens import TokenPool, provision_twitter_tokens
from repro.sources.twitter import TwitterServer
from repro.world.config import WorldConfig
from repro.world.generator import generate_world

FETCHES = 1000


def _run_crawl(world, num_tokens: int) -> float:
    """Returns simulated seconds to complete FETCHES profile fetches."""
    server = TwitterServer(world)
    tokens = provision_twitter_tokens(server, num_tokens)
    pool = TokenPool(tokens, server.clock)
    client = ApiClient(server, server.clock,
                       auth_style=AUTH_QUERY_ACCESS_TOKEN, token_pool=pool)
    profiles = list(world.twitter_profiles.values())
    started = server.clock.now()
    for i in range(FETCHES):
        profile = profiles[i % len(profiles)]
        client.get("/1.1/users/show.json",
                   {"screen_name": profile.screen_name})
    return server.clock.now() - started


@pytest.fixture(scope="module")
def a2_world():
    return generate_world(WorldConfig.tiny(seed=BENCH_SEED))


@pytest.mark.parametrize("num_tokens", [1, 4, 16])
def test_a2_token_pool_throughput(benchmark, a2_world, num_tokens):
    sim_seconds = benchmark.pedantic(
        lambda: _run_crawl(a2_world, num_tokens), rounds=3, iterations=1)
    windows_needed = -(-FETCHES // (180 * num_tokens)) - 1
    print(paper_row(f"{num_tokens} token(s): sim time for {FETCHES} fetches",
                    "inverse in pool size", f"{sim_seconds:.0f}s"))
    # Completion requires exactly `windows_needed` full 15-min waits.
    assert sim_seconds == pytest.approx(windows_needed * 900.0, abs=60.0)


def test_a2_bigger_pool_never_slower(benchmark, a2_world):
    times = benchmark.pedantic(
        lambda: [_run_crawl(a2_world, n) for n in (1, 4, 16)],
        rounds=3, iterations=1)
    assert times[0] >= times[1] >= times[2]
