"""X3 / §7 — predicting fundraising success from graph/social features.

The paper hypothesizes that degree/centrality features predict success.
With the calibrated world, engagement features are genuinely
informative: held-out AUC must comfortably beat chance, and social
metrics must rank among the top coefficients.
"""

from benchmarks.conftest import BENCH_SEED, paper_row


def test_x3_success_prediction(benchmark, bench_platform, bench_graph):
    from repro.analysis.prediction import predict_success

    result = benchmark.pedantic(
        lambda: predict_success(bench_platform.sc, bench_platform.dfs,
                                bench_graph, seed=BENCH_SEED),
        rounds=3, iterations=1)

    print("\n§7 — success prediction (logistic regression)")
    print(paper_row("train / test examples", "—",
                    f"{result.num_train:,} / {result.num_test:,}"))
    print(paper_row("positive rate", "≈1.5%",
                    f"{100 * result.positive_rate:.2f}%"))
    print(paper_row("held-out AUC", ">0.5 (hypothesized predictive)",
                    f"{result.test_auc:.3f}"))
    for name, coef in result.top_features(5):
        print(paper_row(f"coef {name}", "—", f"{coef:+.3f}"))

    assert result.test_auc > 0.75
    assert result.train_auc > 0.75
    top = {name for name, _c in result.top_features(4)}
    assert top & {"log_fb_likes", "log_tw_statuses", "log_tw_followers",
                  "has_facebook", "has_twitter", "has_video"}
