"""A6 — overload-safe serving: shed at the door, answer what you admit.

The tentpole claim: at 10x the admitted QPS limit, with a forced
backend brownout mid-run, request-path chaos faults and one slow DFS
datanode, the query tier

* sheds the excess load deterministically (queue never exceeds its
  bound),
* keeps the p99 latency of every admitted class under that class's
  deadline (deadline propagation refuses work the budget can't cover),
* still answers >= 99% of finally-admitted requests — fresh, or as a
  stale/summary fallback flagged as such (graceful degradation), and
* produces byte-identical metrics on a same-seed rerun.

Run standalone it writes the ``BENCH_serving.json`` perf-trajectory
file that ``tools/check.sh`` produces for every PR::

    PYTHONPATH=src python benchmarks/bench_a6_serving.py \
        --smoke --json benchmarks/out/BENCH_serving.json
"""

import argparse
import json

import pytest

from repro.core.platform import ExploratoryPlatform
from repro.net.faults import FAULT_BROWNOUT, FaultSchedule
from repro.serve.loadgen import LoadProfile, run_bench
from repro.serve.service import ServeConfig
from repro.world.config import WorldConfig

QPS_LIMIT = 20.0
QUEUE_DEPTH = 8
WORKERS = 2
OVERLOAD = 10.0
SCHEDULE_SEED = 42
CHAOS_SEED = 7
#: forced brownout window over backend-request indexes [15, 27)
BROWNOUT_AT, BROWNOUT_SPAN = 15, 12
SLOW_DATANODE_S = 0.05
#: hard floors/ceilings the gate fails on
MIN_ANSWERED_FRACTION = 0.99
MAX_SHED_FRACTION = 0.97
MIN_GOODPUT_FRACTION = 0.5   # of the qps limit


def _build_platform() -> ExploratoryPlatform:
    platform = ExploratoryPlatform.over_new_world(WorldConfig.tiny())
    platform.run_full_crawl()
    platform.serve_dataset()
    for index, node_id in enumerate(sorted(platform.dfs.datanodes)):
        platform.dfs.set_datanode_latency(
            node_id, SLOW_DATANODE_S if index == 0 else 0.004)
    return platform


def _chaos() -> FaultSchedule:
    faults = FaultSchedule.serve_chaos(1.0, seed=CHAOS_SEED)
    faults.force_window(FAULT_BROWNOUT, start=BROWNOUT_AT,
                        span=BROWNOUT_SPAN, duration=0.4)
    return faults


def _run_once(platform: ExploratoryPlatform, duration_s: float):
    service = platform.query_service(
        config=ServeConfig(qps_limit=QPS_LIMIT, queue_depth=QUEUE_DEPTH,
                           workers=WORKERS),
        faults=_chaos())
    profile = LoadProfile(qps=QPS_LIMIT * OVERLOAD, duration_s=duration_s,
                          seed=SCHEDULE_SEED)
    return run_bench(service, platform.serve_dataset(), profile), profile


def check_contract(report, profile) -> list:
    """The overload contract; returns human-readable violations."""
    violations = []
    if report.shed == 0:
        violations.append("10x overload shed nothing — admission "
                          "control is not engaging")
    if report.max_queue_len > QUEUE_DEPTH:
        violations.append(f"queue grew to {report.max_queue_len} "
                          f"(> bound {QUEUE_DEPTH})")
    for cls, deadline_s in profile.deadlines:
        p99 = report.per_class_p99_s.get(cls, 0.0)
        if p99 > deadline_s:
            violations.append(f"{cls} p99 {p99:.3f}s exceeds its "
                              f"{deadline_s:.3f}s deadline")
    if report.answered_fraction < MIN_ANSWERED_FRACTION:
        violations.append(f"only {report.answered_fraction:.1%} of "
                          f"admitted requests answered "
                          f"(floor {MIN_ANSWERED_FRACTION:.0%})")
    if report.shed_fraction > MAX_SHED_FRACTION:
        violations.append(f"shed {report.shed_fraction:.1%} of offered "
                          f"load (ceiling {MAX_SHED_FRACTION:.0%}) — "
                          f"goodput collapsed")
    if report.goodput_qps < MIN_GOODPUT_FRACTION * QPS_LIMIT:
        violations.append(f"goodput {report.goodput_qps:.1f} qps under "
                          f"{MIN_GOODPUT_FRACTION:.0%} of the "
                          f"{QPS_LIMIT:.0f} qps limit")
    degraded_answers = report.stale_served + sum(
        counters["summary_served"]
        for counters in report.metrics["per_class"].values())
    if degraded_answers == 0:
        violations.append("brownout + chaos produced zero degraded "
                          "answers — the fallback ladder never engaged")
    return violations


# ------------------------------------------------------------------ pytest
@pytest.fixture(scope="module")
def serve_platform():
    platform = _build_platform()
    yield platform
    platform.close()


def test_a6_overload_contract(serve_platform):
    report, profile = _run_once(serve_platform, duration_s=3.0)
    assert not check_contract(report, profile)


def test_a6_same_seed_runs_identical(serve_platform):
    first, _ = _run_once(serve_platform, duration_s=3.0)
    second, _ = _run_once(serve_platform, duration_s=3.0)
    assert first.to_json() == second.to_json()


# --------------------------------------------------------------- standalone
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Overload the query tier at 10x its QPS limit with "
                    "chaos faults; write BENCH_serving.json.")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="simulated seconds of offered load")
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: short schedule")
    parser.add_argument("--json", metavar="FILE",
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.duration = min(args.duration, 3.0)

    platform = _build_platform()
    try:
        report, profile = _run_once(platform, args.duration)
        rerun, _ = _run_once(platform, args.duration)
    finally:
        platform.close()
    deterministic = report.to_json() == rerun.to_json()

    print(f"offered {report.offered} at {profile.qps:.0f} qps "
          f"({OVERLOAD:.0f}x the {QPS_LIMIT:.0f} qps limit): "
          f"admitted {report.admitted}, shed {report.shed} "
          f"({report.shed_fraction:.1%})")
    print(f"answered {report.answered_fraction:.1%} of admitted "
          f"({report.stale_served} stale), goodput "
          f"{report.goodput_qps:.1f} qps, p99 "
          f"{1000 * report.p99_latency_s:.1f} ms, max queue "
          f"{report.max_queue_len}/{QUEUE_DEPTH}")
    print(f"hedges {report.hedges_launched}/{report.hedges_won} won, "
          f"health={report.health_state}, deterministic={deterministic}")

    violations = check_contract(report, profile)
    if not deterministic:
        violations.append("same-seed reruns differ — the serving path "
                          "is nondeterministic")
    payload = {
        "benchmark": "serving-overload",
        "overload": OVERLOAD,
        "qps_limit": QPS_LIMIT,
        "queue_depth": QUEUE_DEPTH,
        "duration_s": args.duration,
        "deterministic": deterministic,
        "violations": violations,
        "report": json.loads(report.to_json()),
    }
    if args.json:
        import os
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    for violation in violations:
        print(f"SERVING REGRESSION: {violation}")
    return 1 if violations else 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
