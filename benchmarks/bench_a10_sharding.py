"""A10 — shard-failure-tolerant multi-tenant serving.

Three gates, each of which fails the benchmark (non-zero exit):

* **shard-loss SLO** — with the ``serve_shard_chaos`` profile active
  and a forced ``kill_shard`` taking down every replica of one shard
  mid-run, >= 99% of finally-admitted queries still answer inside their
  deadline; every scatter-gather result's coverage accounting is exact
  (``shards_answered`` matches the per-shard status map, ``partial``
  iff some contacted shard failed), and every *full* fresh answer is
  byte-identical to the unsharded oracle dataset;
* **fair-share isolation** — an abusive tenant offering 10x its
  weighted fair share cannot starve compliant tenants: every tenant's
  goodput stays >= 90% of min(what it offered, its weighted share);
* **determinism** — the whole sharded run (metrics, coverage, and the
  autoscaler's decision log) is byte-identical across two same-seed
  executions.

Run standalone it writes ``BENCH_sharding.json`` for the perf
trajectory::

    PYTHONPATH=src python benchmarks/bench_a10_sharding.py \
        --smoke --json benchmarks/out/BENCH_sharding.json
"""

import argparse
import json

import pytest

from repro.core.platform import ExploratoryPlatform
from repro.net.faults import FAULT_KILL_SHARD, FaultSchedule
from repro.serve.autoscale import ACTION_ADD, REASON_DEAD, AutoscaleConfig
from repro.serve.loadgen import LoadProfile, generate_schedule, replay
from repro.serve.metrics import SHARD_OK, STATUS_FRESH, STATUS_PARTIAL
from repro.serve.service import ServeConfig
from repro.serve.sharding import ShardConfig, kill_target
from repro.serve.tenancy import Tenant
from repro.world.config import WorldConfig

QPS_LIMIT = 40.0
QUEUE_DEPTH = 16
WORKERS = 4
OVERLOAD = 2.5
NUM_SHARDS = 4
REPLICAS = 2
SCHEDULE_SEED = 42
CHAOS_SEED = 7
#: forced one-shot shard kill at this backend-request index (early
#: enough that even the --smoke schedule reaches it)
KILL_AT = 60
SLOW_DATANODE_S = 0.05
MIN_ANSWERED_FRACTION = 0.99
#: fair-share gate: tenant goodput floor as a fraction of entitlement
FAIR_SHARE_FLOOR = 0.90
ABUSE_FACTOR = 10.0
TENANT_WEIGHTS = {"t0": 2.0, "t1": 1.0, "t2": 1.0}


def _build_platform() -> ExploratoryPlatform:
    platform = ExploratoryPlatform.over_new_world(WorldConfig.tiny())
    platform.run_full_crawl()
    platform.serve_dataset()
    for index, node_id in enumerate(sorted(platform.dfs.datanodes)):
        platform.dfs.set_datanode_latency(
            node_id, SLOW_DATANODE_S if index == 0 else 0.004)
    return platform


def _chaos() -> FaultSchedule:
    faults = FaultSchedule.serve_shard_chaos(1.0, seed=CHAOS_SEED)
    faults.force_window(FAULT_KILL_SHARD, start=KILL_AT, span=1)
    return faults


def _run_chaos(platform: ExploratoryPlatform, duration_s: float):
    """Gate (a)+(c): shard-chaos run with a forced mid-run shard kill."""
    faults = _chaos()
    service = platform.sharded_query_service(
        config=ServeConfig(qps_limit=QPS_LIMIT, queue_depth=QUEUE_DEPTH,
                           workers=WORKERS),
        shard_config=ShardConfig(num_shards=NUM_SHARDS, replicas=REPLICAS),
        # deliberately sluggish autoscaler: the killed shard stays dark
        # long enough that scatter-gather must actually serve partials
        autoscale=AutoscaleConfig(tick_every=50, replica_boot_s=0.4),
        faults=faults)
    profile = LoadProfile(qps=QPS_LIMIT * OVERLOAD, duration_s=duration_s,
                          seed=SCHEDULE_SEED)
    report = replay(service, generate_schedule(
        profile, platform.serve_dataset()))
    return report, service, profile


def _tenant_schedule(platform, duration_s: float):
    """Three merged open-loop streams: t0 abusive, t1/t2 compliant.

    Each tenant gets its own seeded single-tenant schedule at its own
    offered rate, retagged and merged by arrival time — so the abusive
    tenant's volume cannot perturb the compliant tenants' draws.
    """
    dataset = platform.serve_dataset()
    total_weight = sum(TENANT_WEIGHTS.values())
    merged = []
    for i, (tenant_id, weight) in enumerate(sorted(TENANT_WEIGHTS.items())):
        share_qps = QPS_LIMIT * weight / total_weight
        offered_qps = share_qps * (ABUSE_FACTOR if tenant_id == "t0"
                                   else 0.8)
        profile = LoadProfile(qps=offered_qps, duration_s=duration_s,
                              seed=SCHEDULE_SEED + 100 + i)
        for request in generate_schedule(profile, dataset):
            request.tenant = tenant_id
            merged.append(request)
    merged.sort(key=lambda r: (r.arrival_s, r.tenant))
    return merged


def _run_tenants(platform: ExploratoryPlatform, duration_s: float):
    """Gate (b): abusive tenant vs weighted-fair isolation."""
    tenants = [Tenant(tid, w) for tid, w in sorted(TENANT_WEIGHTS.items())]
    service = platform.sharded_query_service(
        config=ServeConfig(qps_limit=QPS_LIMIT, queue_depth=QUEUE_DEPTH,
                           workers=WORKERS, burst=QPS_LIMIT * 0.5),
        shard_config=ShardConfig(num_shards=NUM_SHARDS, replicas=REPLICAS),
        tenants=tenants)
    report = replay(service, _tenant_schedule(platform, duration_s))
    return report, service


# ---------------------------------------------------------------- contracts
def check_chaos_contract(report, service, profile, platform) -> list:
    """Gate (a): SLO under shard loss + exact coverage accounting."""
    violations = []
    if report.answered_fraction < MIN_ANSWERED_FRACTION:
        violations.append(
            f"only {report.answered_fraction:.2%} of admitted requests "
            f"answered under shard chaos (floor "
            f"{MIN_ANSWERED_FRACTION:.0%})")

    deadline_of = dict(profile.deadlines)
    late = 0
    for result in report.results:
        if not result.answered:
            continue
        deadline = result.request.deadline_s
        if deadline is None:
            deadline = deadline_of.get(result.request.priority, 0.25)
        if result.latency_s > deadline + 1e-9:
            late += 1
    if late:
        violations.append(f"{late} answered requests finished past "
                          f"their deadline — the per-shard budget "
                          f"arithmetic is leaking")

    # the forced kill must actually have taken a shard down...
    killed = kill_target(CHAOS_SEED, KILL_AT, NUM_SHARDS)
    shard_counters = service.metrics.per_shard.get(killed)
    if shard_counters is None or shard_counters.failed_dead == 0:
        violations.append(f"forced kill_shard at index {KILL_AT} left "
                          f"shard {killed} without a single dead-replica "
                          f"call — the fault never landed")
    # ...and the autoscaler must have rebuilt it
    rebuilds = [d for d in service.metrics.scaling_decisions
                if d[1] == killed and d[2] == ACTION_ADD
                and d[4] == REASON_DEAD]
    if not rebuilds:
        violations.append(f"autoscaler never rebooted killed shard "
                          f"{killed} (no {REASON_DEAD} add decision)")

    # coverage accounting must be exact on every scatter-gather result
    oracle = platform.serve_dataset()
    coverage_errors = 0
    value_mismatches = 0
    partials_seen = 0
    for result in report.results:
        cov = result.coverage
        if cov is not None:
            answered = sum(1 for s in cov["per_shard"].values()
                           if s == SHARD_OK)
            if (cov["shards_answered"] != answered
                    or cov["shards_total"] != len(cov["per_shard"])
                    or cov["partial"] != (answered < cov["shards_total"])):
                coverage_errors += 1
        if result.status == STATUS_PARTIAL:
            partials_seen += 1
            if cov is None or not cov["partial"]:
                coverage_errors += 1
        if result.status == STATUS_FRESH:
            expect = oracle.run(result.request.kind, result.request.key,
                                platform.dfs,
                                depth=result.request.depth).value
            if (json.dumps(expect, sort_keys=True)
                    != json.dumps(result.value, sort_keys=True)):
                value_mismatches += 1
    if coverage_errors:
        violations.append(f"{coverage_errors} results carry inconsistent "
                          f"coverage accounting")
    if value_mismatches:
        violations.append(f"{value_mismatches} fully-covered fresh "
                          f"answers differ from the unsharded oracle")
    if partials_seen != report.partial_results:
        violations.append(
            f"partial bookkeeping split-brained: {partials_seen} partial "
            f"coverages vs {report.partial_results} counted")
    if report.partial_results == 0:
        violations.append("the kill window produced no partial results — "
                          "the coverage contract was never exercised")
    return violations


def check_tenant_contract(report, service, duration_s: float) -> list:
    """Gate (b): zero cross-tenant starvation under 10x tenant abuse."""
    violations = []
    total_weight = sum(TENANT_WEIGHTS.values())
    for tenant_id, weight in sorted(TENANT_WEIGHTS.items()):
        row = report.per_tenant.get(tenant_id)
        if row is None:
            violations.append(f"tenant {tenant_id} missing from the "
                              f"per-tenant accounting")
            continue
        share_qps = QPS_LIMIT * weight / total_weight
        entitled = min(row["offered"], share_qps * duration_s)
        if row["answered"] < FAIR_SHARE_FLOOR * entitled:
            violations.append(
                f"tenant {tenant_id} starved: answered {row['answered']} "
                f"< {FAIR_SHARE_FLOOR:.0%} of its entitlement "
                f"({entitled:.0f})")
    abusive = report.per_tenant.get("t0", {})
    if abusive and abusive.get("shed_rate", 0) == 0:
        violations.append("abusive tenant t0 was never rate-clipped — "
                          "per-tenant buckets are not engaging")
    return violations


# ------------------------------------------------------------------ pytest
@pytest.fixture(scope="module")
def shard_platform():
    platform = _build_platform()
    yield platform
    platform.close()


def test_a10_shard_loss_slo(shard_platform):
    report, service, profile = _run_chaos(shard_platform, duration_s=3.0)
    assert not check_chaos_contract(report, service, profile,
                                    shard_platform)


def test_a10_fair_share_isolation(shard_platform):
    report, service = _run_tenants(shard_platform, duration_s=3.0)
    assert not check_tenant_contract(report, service, 3.0)


def test_a10_same_seed_runs_identical(shard_platform):
    first, svc1, _ = _run_chaos(shard_platform, duration_s=3.0)
    second, svc2, _ = _run_chaos(shard_platform, duration_s=3.0)
    assert first.to_json() == second.to_json()
    assert svc1.metrics.to_json() == svc2.metrics.to_json()
    assert svc1.metrics.scaling_decisions == svc2.metrics.scaling_decisions


# --------------------------------------------------------------- standalone
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Kill a shard mid-run, abuse a tenant at 10x its "
                    "share, and demand SLOs, exact coverage, fair "
                    "shares, and byte-identical replays.")
    parser.add_argument("--duration", type=float, default=8.0,
                        help="simulated seconds of offered load")
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: short schedule")
    parser.add_argument("--json", metavar="FILE",
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.duration = min(args.duration, 3.0)

    platform = _build_platform()
    try:
        report, service, profile = _run_chaos(platform, args.duration)
        rerun, rerun_service, _ = _run_chaos(platform, args.duration)
        tenant_report, tenant_service = _run_tenants(platform,
                                                     args.duration)
        violations = check_chaos_contract(report, service, profile,
                                          platform)
        violations += check_tenant_contract(tenant_report, tenant_service,
                                            args.duration)
    finally:
        platform.close()
    deterministic = (
        report.to_json() == rerun.to_json()
        and service.metrics.to_json() == rerun_service.metrics.to_json())
    if not deterministic:
        violations.append("same-seed sharded runs differ — scatter-"
                          "gather or autoscaling is nondeterministic")

    killed = kill_target(CHAOS_SEED, KILL_AT, NUM_SHARDS)
    print(f"chaos run: offered {report.offered}, admitted "
          f"{report.admitted}, answered {report.answered_fraction:.1%} "
          f"of admitted, {report.partial_results} partial results")
    print(f"shard {killed} killed at backend index {KILL_AT}; "
          f"{report.scaling_decisions} autoscaler decisions, "
          f"p99 {1000 * report.p99_latency_s:.1f} ms")
    for tenant_id in sorted(tenant_report.per_tenant):
        row = tenant_report.per_tenant[tenant_id]
        print(f"  tenant {tenant_id}: offered {row['offered']}, "
              f"answered {row['answered']}, shed "
              f"{row['shed_rate'] + row['shed_queue']}")
    print(f"deterministic={deterministic}")

    payload = {
        "benchmark": "serve-sharding",
        "num_shards": NUM_SHARDS,
        "replicas": REPLICAS,
        "qps_limit": QPS_LIMIT,
        "overload": OVERLOAD,
        "duration_s": args.duration,
        "killed_shard": killed,
        "deterministic": deterministic,
        "violations": violations,
        "report": json.loads(report.to_json()),
        "tenant_report": json.loads(tenant_report.to_json()),
    }
    if args.json:
        import os
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    for violation in violations:
        print(f"SHARDING REGRESSION: {violation}")
    return 1 if violations else 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
