"""A1 ablation — engine partitioning and parallelism.

DESIGN.md calls out the engine's stage/partition model as a design
choice; this ablation measures a representative shuffle-heavy job
(group-by over 200k rows) across partition counts and checks the result
is invariant — partitioning is a performance knob, never a semantics
knob.
"""

import pytest

from repro.engine.context import SparkLiteContext

ROWS = 200_000


def _job(sc: SparkLiteContext, partitions: int):
    return (sc.parallelize(range(ROWS), partitions)
            .map(lambda x: (x % 97, x))
            .reduce_by_key(lambda a, b: a + b)
            .count())


@pytest.mark.parametrize("partitions", [1, 4, 16])
def test_a1_engine_partition_scaling(benchmark, partitions):
    with SparkLiteContext(parallelism=4) as sc:
        result = benchmark.pedantic(lambda: _job(sc, partitions),
                                    rounds=3, iterations=1)
    assert result == 97


def test_a1_results_invariant_across_parallelism(benchmark):
    def all_configs():
        outputs = set()
        for parallelism in (1, 2, 8):
            with SparkLiteContext(parallelism=parallelism) as sc:
                keyed = (sc.parallelize(range(5000), parallelism * 2)
                         .map(lambda x: (x % 13, x))
                         .reduce_by_key(lambda a, b: a + b)
                         .collect())
                outputs.add(tuple(sorted(keyed)))
        return outputs

    outputs = benchmark.pedantic(all_configs, rounds=3, iterations=1)
    assert len(outputs) == 1
