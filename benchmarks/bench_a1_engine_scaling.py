"""A1 ablation — engine backends, partitioning and parallelism.

DESIGN.md calls out the engine's stage/partition model as a design
choice; this ablation measures a representative shuffle-heavy job
across partition counts *and* execution backends, and checks the result
is invariant — partitioning and backend choice are performance knobs,
never semantics knobs.

Run standalone to sweep backends on a CPU-bound workload and dump the
per-stage JobMetrics the speedup claims rest on::

    PYTHONPATH=src python benchmarks/bench_a1_engine_scaling.py \
        --backend all --rows 200000 --parallelism 4 --json sweep.json

The workload's functions are module-level on purpose: that is what
makes the partition tasks picklable, so the process backend actually
ships them to workers instead of falling back in-driver.
"""

import argparse
import json
import operator
import time

import pytest

from repro.engine.backends import BACKENDS
from repro.engine.context import SparkLiteContext

ROWS = 200_000
_SPIN = 60  # iterations of the per-element hash loop (CPU weight)


def _busy_key(x: int):
    """A deliberately CPU-bound keying function (picklable)."""
    acc = x & 0x7FFFFFFF
    for _ in range(_SPIN):
        acc = (acc * 1103515245 + 12345) & 0x7FFFFFFF
    return (x % 97, acc)


def _job(sc: SparkLiteContext, partitions: int, rows: int = ROWS):
    return (sc.parallelize(range(rows), partitions)
            .map(_busy_key)
            .reduce_by_key(operator.add)
            .count())


@pytest.mark.parametrize("partitions", [1, 4, 16])
def test_a1_engine_partition_scaling(benchmark, partitions):
    with SparkLiteContext(parallelism=4) as sc:
        result = benchmark.pedantic(lambda: _job(sc, partitions),
                                    rounds=3, iterations=1)
    assert result == 97


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_a1_backend_sweep(benchmark, backend):
    """Same job, every backend: identical result, measured wall time."""
    with SparkLiteContext(parallelism=4, backend=backend) as sc:
        result = benchmark.pedantic(
            lambda: _job(sc, 8, rows=20_000), rounds=3, iterations=1)
        metrics = sc.last_job_metrics
    assert result == 97
    assert metrics.backend == backend
    assert metrics.shuffles == 1
    assert metrics.shuffle_records == 20_000
    # picklable workload: the process backend must not have fallen back
    assert metrics.fallbacks == 0


def test_a1_results_invariant_across_parallelism(benchmark):
    def all_configs():
        outputs = set()
        for parallelism in (1, 2, 8):
            with SparkLiteContext(parallelism=parallelism) as sc:
                keyed = (sc.parallelize(range(5000), parallelism * 2)
                         .map(lambda x: (x % 13, x))
                         .reduce_by_key(lambda a, b: a + b)
                         .collect())
                outputs.add(tuple(sorted(keyed)))
        return outputs

    outputs = benchmark.pedantic(all_configs, rounds=3, iterations=1)
    assert len(outputs) == 1


# --------------------------------------------------------------- standalone
def _sweep_one(backend: str, rows: int, partitions: int,
               parallelism: int, rounds: int,
               combine: bool = True, compress: bool = False) -> dict:
    times = []
    metrics = None
    with SparkLiteContext(parallelism=parallelism, backend=backend,
                          shuffle_combine=combine,
                          shuffle_compress=compress) as sc:
        result = _job(sc, partitions, rows)  # warm-up (pools spin up lazily)
        for _ in range(rounds):
            start = time.perf_counter()
            result = _job(sc, partitions, rows)
            times.append(time.perf_counter() - start)
        metrics = sc.last_job_metrics
    return {
        "backend": backend,
        "rows": rows,
        "partitions": partitions,
        "parallelism": parallelism,
        "combine": combine,
        "compress": compress,
        "result": result,
        "wall_s_best": min(times),
        "wall_s_all": [round(t, 4) for t in times],
        "job_metrics": metrics.as_dict(include_stages=True),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Sweep SparkLite execution backends on a CPU-bound "
                    "shuffle workload and report per-stage JobMetrics.")
    parser.add_argument("--backend", default="all",
                        choices=sorted(BACKENDS) + ["all"])
    parser.add_argument("--rows", type=int, default=ROWS)
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument("--parallelism", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed repetitions after warm-up (min 1)")
    parser.add_argument("--no-combine", action="store_true",
                        help="disable map-side combiners (A/B baseline)")
    parser.add_argument("--compress", action="store_true",
                        help="zlib-compress shuffle blocks")
    parser.add_argument("--json", metavar="FILE",
                        help="also write the sweep as JSON")
    args = parser.parse_args(argv)
    if args.rounds < 1 or args.rows < 1 or args.partitions < 1 \
            or args.parallelism < 1:
        parser.error("--rounds/--rows/--partitions/--parallelism "
                     "must all be >= 1")

    backends = sorted(BACKENDS) if args.backend == "all" else [args.backend]
    rows_out = []
    for backend in backends:
        entry = _sweep_one(backend, args.rows, args.partitions,
                           args.parallelism, args.rounds,
                           combine=not args.no_combine,
                           compress=args.compress)
        rows_out.append(entry)
        jm = entry["job_metrics"]
        print(f"{backend:>8}: best {entry['wall_s_best']:.3f}s  "
              f"(stages={len(jm['stages'])} "
              f"shuffled={jm['shuffle_records']}→"
              f"{jm['shuffle_records_moved']} recs / "
              f"{jm['shuffle_bytes']} B, fallbacks={jm['fallbacks']})")
        for stage in jm["stages"]:
            print(f"          stage {stage['stage_id']} {stage['name']:<12} "
                  f"{stage['kind']:<8} p={stage['partitions']:<3} "
                  f"{stage['wall_s']:.3f}s")
    results = {entry["result"] for entry in rows_out}
    if len(results) != 1:
        print(f"RESULT MISMATCH across backends: {results}")
        return 1
    if len(rows_out) > 1:
        base = next(e for e in rows_out if e["backend"] == "serial")
        for entry in rows_out:
            speedup = base["wall_s_best"] / entry["wall_s_best"]
            print(f"{entry['backend']:>8}: {speedup:.2f}x vs serial")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(rows_out, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
