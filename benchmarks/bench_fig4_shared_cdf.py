"""E5 / Figure 4 — CDFs of shared investment size.

Paper: the three strongest communities' CDFs lie well below the global
i.i.d.-pair CDF (i.e. their pairs share far more investments); the
strongest two average 2.1 and 1.6 shared co-investments, max 48; the
800,000-pair global estimate satisfies ‖F_n − F‖∞ ≤ 0.0196 w.p. ≥ 99%
(DKW actually guarantees 0.0018 at that n — we report both).
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, paper_row
from repro.viz.ascii import ascii_cdf


def test_fig4_shared_investment_cdfs(benchmark, bench_study, bench_graph):
    study = bench_study
    _graph = bench_graph

    # Time the Figure 4 computation: per-community pairwise CDFs plus a
    # fresh global pair sample (smaller than the study's, per round).
    def figure4(graph=None):
        from repro.metrics.ecdf import EmpiricalCDF
        from repro.metrics.shared import (pairwise_shared_sizes,
                                          sampled_shared_sizes)
        from repro.util.rng import RngStream
        portfolios = _graph.portfolios()
        cdfs = []
        for cid in study.strong_cdfs:
            members = sorted(study.coda.investor_communities[cid])
            sizes = pairwise_shared_sizes(members, portfolios)
            if sizes:
                cdfs.append(EmpiricalCDF(sizes))
        sample = sampled_shared_sizes(_graph.investors, portfolios,
                                      20_000, RngStream(1, "bench"))
        return cdfs, EmpiricalCDF(sample)

    benchmark.pedantic(figure4, rounds=3, iterations=1)

    print("\nFigure 4 — shared-investment-size CDFs")
    strongest = sorted(study.strengths,
                       key=lambda s: -s.avg_shared_size)[:3]
    for rank, strength in enumerate(strongest, 1):
        paper_avg = {1: "2.1", 2: "1.6", 3: "—"}[rank]
        print(paper_row(f"strong community #{rank} avg shared",
                        paper_avg, f"{strength.avg_shared_size:.2f}"))
    max_shared = max(s.max_shared_size for s in study.strengths)
    print(paper_row("max shared size across communities", "48 (full scale)",
                    f"{max_shared}"))
    print(paper_row("global pairs sampled", "800,000 (full scale)",
                    f"{study.global_pairs_sampled:,}"))
    print(paper_row("sup-norm bound (99%)", "0.0196 (paper, loose)",
                    f"{study.dkw_bound:.4f} (DKW)"))
    print(paper_row("global mean shared size", "≈0",
                    f"{study.global_cdf.mean:.4f}"))

    # Shape: strong communities dominate the global baseline.
    for cdf in study.strong_cdfs.values():
        assert cdf.mean > 5 * study.global_cdf.mean
    assert strongest[0].avg_shared_size > 1.0
    assert study.global_cdf.mean < 0.2
    assert study.dkw_bound < 0.0196  # paper's claim holds a fortiori
