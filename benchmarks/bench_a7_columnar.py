"""A7 ablation — the columnar core: record batches + shared-memory shuffle.

The tentpole claims, each pinned here and in the standalone
``BENCH_columnar.json`` writer:

* **invisible**: for reduceByKey / join / range-sort workloads the
  columnar engine (batched narrow ops, per-batch combiners, BatchBlock
  exchange) is byte-identical to the row engine on the serial oracle;
* **faster in parallel**: on a 4+-core host the columnar process
  backend beats the serial row engine by ≥2× wall clock (the gate is
  skipped on smaller hosts, where there is no parallelism to win);
* **clean**: a chaos run over the shm exchange leaves zero segments in
  ``/dev/shm``.

Standalone::

    PYTHONPATH=src python benchmarks/bench_a7_columnar.py \
        --smoke --json benchmarks/out/BENCH_columnar.json

All workload functions are module-level so the process backend actually
ships them (and shm block descriptors) to pool workers.
"""

import argparse
import json
import operator
import os
import time

import pytest

from repro.engine.columnar import (SHM_BASE_PREFIX, list_segments,
                                   shm_available)
from repro.engine.context import SparkLiteContext

ROWS = 60_000
PARTITIONS = 8
BATCH_ROWS = 4096
#: the ≥2× process-vs-serial gate needs real parallelism to exist
MIN_CORES_FOR_SPEEDUP_GATE = 4

_HOT_KEYS = 8


# ---------------------------------------------------------------- workloads
def _skewed_pair(x: int):
    if x % 4:
        return (x % _HOT_KEYS, 1)
    return (_HOT_KEYS + x % 24, 1)


def _wide_pair(x: int):
    """Pairs with a string payload: the columnar win is largest when
    rows carry varlen data the batch heap stores contiguously."""
    return (x % 64, f"record-{x % 7}-" + "payload" * 4)


def _join_left(x: int):
    return (x % 128, x)


def _join_right(x: int):
    return (x % 128, -x)


def _sort_key(pair):
    return pair[0]


def _reduce_job(sc, rows):
    return (sc.parallelize(range(rows), PARTITIONS)
            .map(_skewed_pair).reduce_by_key(operator.add).collect())


def _wide_reduce_job(sc, rows):
    return (sc.parallelize(range(rows), PARTITIONS)
            .map(_wide_pair).group_by_key().collect())


def _join_job(sc, rows):
    left = sc.parallelize(range(rows), PARTITIONS).map(_join_left)
    right = sc.parallelize(range(rows // 2), PARTITIONS).map(_join_right)
    return left.join(right).collect()


def _sort_job(sc, rows):
    return (sc.parallelize(range(rows), PARTITIONS)
            .map(_wide_pair).sort_by(_sort_key).collect())


WORKLOADS = {
    "reduce_by_key": _reduce_job,
    "group_by_key_wide": _wide_reduce_job,
    "join": _join_job,
    "range_sort": _sort_job,
}


def _run(workload: str, rows: int, backend: str, columnar: bool,
         rounds: int = 1, **kwargs):
    """One configuration → (result, metrics dict, best wall seconds)."""
    job = WORKLOADS[workload]
    times = []
    with SparkLiteContext(parallelism=4, backend=backend,
                          engine_columnar=columnar,
                          batch_rows=BATCH_ROWS, **kwargs) as sc:
        result = job(sc, rows)  # warm-up
        for _ in range(rounds):
            start = time.perf_counter()
            result = job(sc, rows)
            times.append(time.perf_counter() - start)
        metrics = sc.last_job_metrics.as_dict()
    return result, metrics, min(times)


# ------------------------------------------------------------------ pytest
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_a7_columnar_identical_on_serial_oracle(benchmark, workload):
    """The acceptance gate: columnar on vs. off on the serial backend,
    byte-identical output for every workload kind."""
    def both():
        row, _m, _t = _run(workload, 12_000, "serial", columnar=False)
        col, _m2, _t2 = _run(workload, 12_000, "serial", columnar=True)
        return row, col
    row, col = benchmark.pedantic(both, rounds=1, iterations=1)
    assert repr(col) == repr(row)


@pytest.mark.parametrize("workload", ["reduce_by_key", "join"])
def test_a7_process_columnar_matches_row_oracle(workload):
    row, _m, _t = _run(workload, 8_000, "serial", columnar=False)
    col, metrics, _t2 = _run(workload, 8_000, "process", columnar=True)
    assert repr(col) == repr(row)
    assert metrics["fallbacks"] == 0
    assert metrics["shuffle_bytes"] == \
        metrics["shuffle_bytes_shm"] + metrics["shuffle_bytes_pickled"]


def test_a7_shm_exchange_moves_the_data():
    if not shm_available():
        pytest.skip("no shared memory on this platform")
    _result, metrics, _t = _run("group_by_key_wide", 8_000, "serial",
                                columnar=True, shuffle_shm=True)
    assert metrics["shuffle_bytes_shm"] > 0
    assert metrics["shuffle_bytes_shm"] > metrics["shuffle_bytes_pickled"]
    assert list_segments(SHM_BASE_PREFIX) == []


@pytest.mark.skipif((os.cpu_count() or 1) < MIN_CORES_FOR_SPEEDUP_GATE,
                    reason="speedup gate needs >= 4 cores")
def test_a7_parallel_speedup_gate(benchmark):
    """On real hardware the columnar process backend must beat the
    serial row engine ≥2× on the reduce workload."""
    def measure():
        _r, _m, serial_s = _run("reduce_by_key", ROWS, "serial",
                                columnar=False, rounds=2)
        _r2, _m2, process_s = _run("reduce_by_key", ROWS, "process",
                                   columnar=True, rounds=2)
        return serial_s / process_s
    speedup = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert speedup >= 2.0, f"columnar process speedup {speedup:.2f}x < 2x"


def test_a7_chaos_run_leaks_no_segments():
    if not shm_available():
        pytest.skip("no shared memory on this platform")
    from repro.net.faults import FaultSchedule
    faults = FaultSchedule.engine_chaos(intensity=8.0, seed=11)
    with SparkLiteContext(parallelism=4, backend="thread",
                          task_deadline=5.0, engine_faults=faults,
                          engine_columnar=True, batch_rows=64,
                          shuffle_shm=True) as sc:
        got = _reduce_job(sc, 4_000)
    with SparkLiteContext(parallelism=2, backend="serial") as oracle:
        assert repr(sorted(got)) == repr(sorted(_reduce_job(oracle, 4_000)))
    assert list_segments(SHM_BASE_PREFIX) == []


# --------------------------------------------------------------- standalone
def _bench_payload(rows: int, rounds: int) -> dict:
    cores = os.cpu_count() or 1
    gate_active = cores >= MIN_CORES_FOR_SPEEDUP_GATE
    workloads = {}
    for name in sorted(WORKLOADS):
        row_result, row_metrics, row_s = _run(
            name, rows, "serial", columnar=False, rounds=rounds)
        col_result, col_metrics, col_s = _run(
            name, rows, "serial", columnar=True, rounds=rounds)
        assert repr(col_result) == repr(row_result), \
            f"columnar changed results on {name}"
        proc_result, proc_metrics, proc_s = _run(
            name, rows, "process", columnar=True, rounds=rounds)
        assert repr(proc_result) == repr(row_result), \
            f"columnar process diverged on {name}"
        workloads[name] = {
            "rows": rows,
            "wall_s_serial_rows": round(row_s, 4),
            "wall_s_serial_columnar": round(col_s, 4),
            "wall_s_process_columnar": round(proc_s, 4),
            "speedup_process_vs_serial": round(row_s / proc_s, 3),
            "shuffle_bytes": proc_metrics["shuffle_bytes"],
            "shuffle_bytes_shm": proc_metrics["shuffle_bytes_shm"],
            "shuffle_bytes_pickled": proc_metrics["shuffle_bytes_pickled"],
            "fallbacks": proc_metrics["fallbacks"],
        }
    leaked = list_segments(SHM_BASE_PREFIX)
    return {
        "benchmark": "columnar-core",
        "cores": cores,
        "shm_available": shm_available(),
        "speedup_gate_active": gate_active,
        "speedup_gate_x": 2.0,
        "leaked_segments": leaked,
        "workloads": workloads,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the columnar core: row vs. batch engine on "
                    "reduce/join/sort, shm exchange accounting; write "
                    "BENCH_columnar.json.")
    parser.add_argument("--rows", type=int, default=ROWS)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: few rows, one round")
    parser.add_argument("--json", metavar="FILE",
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows, args.rounds = min(args.rows, 10_000), 1
    if args.rows < 1 or args.rounds < 1:
        parser.error("--rows/--rounds must be >= 1")

    payload = _bench_payload(args.rows, args.rounds)
    for name, row in payload["workloads"].items():
        shm_share = (row["shuffle_bytes_shm"]
                     / max(1, row["shuffle_bytes"]))
        print(f"{name:>18}: serial-rows {row['wall_s_serial_rows']:.3f}s, "
              f"serial-columnar {row['wall_s_serial_columnar']:.3f}s, "
              f"process-columnar {row['wall_s_process_columnar']:.3f}s "
              f"({row['speedup_process_vs_serial']}x), "
              f"{shm_share:.0%} of shuffle bytes via shm")

    if payload["leaked_segments"]:
        print(f"SHM LEAK: {payload['leaked_segments']}")
        return 1
    if payload["speedup_gate_active"]:
        gate = min(payload["workloads"][w]["speedup_process_vs_serial"]
                   for w in ("reduce_by_key", "join", "range_sort"))
        if gate < payload["speedup_gate_x"]:
            print(f"COLUMNAR REGRESSION: process speedup {gate}x < "
                  f"{payload['speedup_gate_x']}x on {payload['cores']} cores")
            return 1
    else:
        print(f"speedup gate skipped: {payload['cores']} core(s) < "
              f"{MIN_CORES_FOR_SPEEDUP_GATE}")
    if args.json:
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
