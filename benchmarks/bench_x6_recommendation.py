"""X6 / §6 — investor recommendation baseline (An et al., WWW '14).

The paper contrasts itself with recommender work on Kickstarter; this
benchmark runs the task on our investment graph. At real-world sparsity
(median 1 investment) popularity is a strong control; collaborative
filtering must still retrieve hidden edges, and the gap narrows as
herding concentrates portfolios.
"""

from benchmarks.conftest import BENCH_SEED, paper_row
from repro.analysis.recommend import evaluate_recommenders

K = 25


def test_x6_investor_recommendation(benchmark, bench_graph):
    results = benchmark.pedantic(
        lambda: evaluate_recommenders(bench_graph, k=K,
                                      max_test_investors=150,
                                      seed=BENCH_SEED),
        rounds=3, iterations=1)
    by_method = {r.method: r for r in results}

    chance = K / max(1, bench_graph.num_companies)
    print(f"\n§6 — leave-one-out recommendation (k={K})")
    print(paper_row("chance hit rate", "—", f"{chance:.4f}"))
    for method, result in by_method.items():
        print(paper_row(f"{method}: hit@{K} / MRR", "—",
                        f"{result.hit_rate_at_k:.3f} / {result.mrr:.4f}"))

    for result in results:
        assert result.test_investors > 50
        assert result.hit_rate_at_k >= 0.5 * chance
    # The non-personalized control is strong at median-1-investment
    # sparsity (as An et al. also found on Kickstarter).
    assert by_method["popularity"].hit_rate_at_k > 3 * chance
