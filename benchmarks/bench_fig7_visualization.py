"""E7 / Figure 7 — strong vs weak community visualization.

Paper: the strong community (avg shared size 2.1, 27.9% shared-investor
percentage) draws as a dense co-investment mesh; the weak one (0.018,
12.5%) as investors with private portfolios. Benchmarks the layout +
SVG render and writes both figures next to the benchmark outputs.
"""

import os

from benchmarks.conftest import paper_row
from repro.analysis.strength import community_figure_svg

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def test_fig7_strong_weak_svg(benchmark, bench_study, bench_graph):
    study = bench_study
    strong_id = study.strong_community_id
    weak_id = study.weak_community_id

    svg_strong = benchmark.pedantic(
        lambda: community_figure_svg(study, bench_graph, strong_id,
                                     title="strong community"),
        rounds=3, iterations=1)
    svg_weak = community_figure_svg(study, bench_graph, weak_id,
                                    title="weak community")

    os.makedirs(OUT_DIR, exist_ok=True)
    for name, svg in (("fig7a_strong.svg", svg_strong),
                      ("fig7b_weak.svg", svg_weak)):
        with open(os.path.join(OUT_DIR, name), "w") as handle:
            handle.write(svg)

    strong = study.strength(strong_id)
    weak = study.strength(weak_id)
    print("\nFigure 7 — community exemplars (SVGs in benchmarks/out/)")
    print(paper_row("strong avg shared / pct", "2.1 / 27.9%",
                    f"{strong.avg_shared_size:.2f} / "
                    f"{strong.shared_investor_pct:.1f}%"))
    print(paper_row("weak avg shared / pct", "0.018 / 12.5%",
                    f"{weak.avg_shared_size:.3f} / "
                    f"{weak.shared_investor_pct:.1f}%"))

    assert svg_strong.startswith("<svg") and svg_weak.startswith("<svg")
    assert strong.avg_shared_size > 3 * max(0.01, weak.avg_shared_size)
    # the strong drawing contains many shared (red) company nodes
    assert svg_strong.count("#c53030") >= 3
