"""E2 / Figure 6 — social engagement's impact on fundraising success.

Times the full engine job that builds the table from crawled datasets,
prints the regenerated table next to the paper's numbers, and asserts
the paper's qualitative claims (≈30× social lift, diminishing returns
of both platforms, ≥11.5× video lift, engagement > presence).
"""

from benchmarks.conftest import paper_row

PAPER = {
    "No social media presence": 0.4,
    "Facebook only": 12.2,
    "Twitter only": 10.2,
    "Facebook and Twitter": 13.2,
    "Presence of demo video": 10.4,
    "No demo video": 0.9,
}


def test_fig6_engagement_table(benchmark, bench_platform):
    from repro.analysis.engagement import compute_engagement_table

    table = benchmark.pedantic(
        lambda: compute_engagement_table(bench_platform.sc,
                                         bench_platform.dfs),
        rounds=3, iterations=1)

    print("\nFigure 6 — % success by engagement category")
    print(table.render())
    for label, paper_pct in PAPER.items():
        measured = table.row(label).success_pct
        print(paper_row(label, f"{paper_pct}%", f"{measured:.1f}%"))
    lift = table.success_lift("Facebook only")
    print(paper_row("Facebook lift vs no-social", "30x", f"{lift:.0f}x"))

    # Shape assertions: who wins and by roughly what factor.
    assert 10 <= lift <= 90
    no_social = table.row("No social media presence").success_pct
    assert no_social < 1.0
    assert table.row("Facebook and Twitter").success_pct \
        < 2 * table.row("Facebook only").success_pct
    video_lift = (table.row("Presence of demo video").success_pct
                  / max(1e-9, table.row("No demo video").success_pct))
    assert video_lift > 8
    hi_rows = [r for r in table.rows if ">" in r.label and "and" in r.label]
    assert all(r.success_pct > table.row("Facebook only").success_pct
               for r in hi_rows)
