"""A5 ablation — partition-level recovery beats a full stage rerun.

The tentpole claim: when an executor dies mid-stage, lineage-based
recovery recomputes only the partitions that were actually lost — the
survivors' results are kept — so ``recomputed_partitions`` in the job
metrics stays strictly below the stage's partition count, where a full
stage rerun would pay for all of them. A second measurement pins the
checkpoint path: re-collecting a checkpointed RDD restores from the
DFS without materializing any lineage. This module pins both claims as
pytest tests and, run standalone, writes the ``BENCH_recovery.json``
perf-trajectory file that ``tools/check.sh`` produces for every PR::

    PYTHONPATH=src python benchmarks/bench_a5_recovery.py \
        --smoke --json benchmarks/out/BENCH_recovery.json

The workload's functions are module-level so they pickle, and the
"this worker already died once" marker is a *file* (under the directory
named by ``REPRO_RECOVERY_MARKER_DIR``) so the decision survives the
killed process: the relaunched attempt sees the marker and computes
normally.
"""

import argparse
import json
import multiprocessing
import os
import shutil
import tempfile
import time

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.engine.backends import BACKENDS
from repro.engine.context import SparkLiteContext
from repro.engine.supervisor import ExecutorLostError

ROWS = 12_000
PARTITIONS = 8
MARKER_ENV = "REPRO_RECOVERY_MARKER_DIR"
#: the element whose task kills its executor, chosen per run (first
#: element of the last partition) and passed via env so it survives the
#: fork into pool workers
KILL_ENV = "REPRO_RECOVERY_KILL_ELEMENT"


def _work(x: int) -> int:
    """A measurably expensive per-row computation (picklable)."""
    acc = 0
    for i in range(120):
        acc += (x * i) % 7919
    return acc


def _work_or_die_once(x: int) -> int:
    """Kills the hosting executor the first time the kill element runs.

    Sleeping before dying lets every sibling partition finish, so
    recovery has survivors to preserve — the whole point of the claim.
    """
    if x == int(os.environ[KILL_ENV]):
        marker = os.path.join(os.environ[MARKER_ENV], "died")
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            time.sleep(0.2)
            if multiprocessing.current_process().name != "MainProcess":
                os._exit(1)
            raise ExecutorLostError("simulated executor loss")
    return _work(x)


def _job(sc: SparkLiteContext, rows: int, fn):
    return sc.parallelize(range(rows), PARTITIONS).map(fn).collect()


def _clear_marker() -> None:
    marker = os.path.join(os.environ[MARKER_ENV], "died")
    if os.path.exists(marker):
        os.remove(marker)


def _run_recovery(backend: str, rows: int):
    """Clean run vs. kill-one-worker run → (metrics row, results match)."""
    os.environ[KILL_ENV] = str(rows - rows // PARTITIONS)
    with SparkLiteContext(parallelism=4, backend=backend,
                          task_deadline=30.0) as sc:
        start = time.perf_counter()
        clean = _job(sc, rows, _work)
        wall_clean = time.perf_counter() - start
    _clear_marker()
    with SparkLiteContext(parallelism=4, backend=backend,
                          task_deadline=30.0) as sc:
        start = time.perf_counter()
        recovered = _job(sc, rows, _work_or_die_once)
        wall_recovery = time.perf_counter() - start
        metrics = sc.last_job_metrics
    row = {
        "rows": rows,
        "partitions": PARTITIONS,
        "wall_s_clean": round(wall_clean, 4),
        "wall_s_recovery": round(wall_recovery, 4),
        "recomputed_partitions": metrics.recomputed_partitions,
        "partitions_full_rerun": PARTITIONS,
        "recompute_fraction": round(
            metrics.recomputed_partitions / PARTITIONS, 3),
        "lost_executors": metrics.lost_executors,
        "pool_rebuilds": metrics.pool_rebuilds,
    }
    return row, recovered == clean


def _run_checkpoint(rows: int):
    """First materialization vs. checkpoint restore of the same RDD."""
    dfs = MiniDfs()
    with SparkLiteContext(parallelism=2, backend="serial",
                          checkpoint_dir="/engine/checkpoints",
                          checkpoint_dfs=dfs) as sc:
        rdd = (sc.parallelize(range(rows), PARTITIONS)
               .map(_work).checkpoint())
        start = time.perf_counter()
        first = rdd.collect()
        wall_first = time.perf_counter() - start
        start = time.perf_counter()
        again = rdd.collect()
        wall_restore = time.perf_counter() - start
        metrics = sc.last_job_metrics
    assert again == first
    return {
        "rows": rows,
        "wall_s_first": round(wall_first, 4),
        "wall_s_restore": round(wall_restore, 4),
        "checkpoint_hits": metrics.checkpoint_hits,
        "rdds_materialized_on_restore": metrics.rdds_materialized,
    }


# ------------------------------------------------------------------ pytest
@pytest.fixture(autouse=True)
def _marker_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(MARKER_ENV, str(tmp_path))


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_a5_recovery_recomputes_fewer_partitions(backend):
    """Losing one executor never recomputes the whole stage."""
    row, identical = _run_recovery(backend, 4_000)
    assert identical, f"recovery changed results on {backend}"
    assert 1 <= row["recomputed_partitions"] < PARTITIONS, row


def test_a5_checkpoint_restore_skips_lineage():
    row = _run_checkpoint(4_000)
    assert row["checkpoint_hits"] == 1
    assert row["rdds_materialized_on_restore"] == 0


# --------------------------------------------------------------- standalone
def _bench_payload(rows: int) -> dict:
    recovery = {}
    for backend in sorted(BACKENDS):
        row, identical = _run_recovery(backend, rows)
        assert identical, f"recovery changed results on {backend}"
        recovery[backend] = row
    return {
        "benchmark": "engine-partition-recovery",
        "recovery": recovery,
        "checkpoint": _run_checkpoint(rows),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure partition-level recovery vs. a full stage "
                    "rerun; write BENCH_recovery.json.")
    parser.add_argument("--rows", type=int, default=ROWS)
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: few rows")
    parser.add_argument("--json", metavar="FILE",
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows = min(args.rows, 4_000)
    if args.rows < PARTITIONS:
        parser.error(f"--rows must be >= {PARTITIONS}")

    marker_dir = tempfile.mkdtemp(prefix="repro-recovery-")
    os.environ[MARKER_ENV] = marker_dir
    try:
        payload = _bench_payload(args.rows)
    finally:
        shutil.rmtree(marker_dir, ignore_errors=True)

    for backend, row in payload["recovery"].items():
        print(f"{backend:>8}: recomputed {row['recomputed_partitions']}/"
              f"{row['partitions_full_rerun']} partitions "
              f"({row['recompute_fraction']:.0%} of a full rerun), "
              f"{row['wall_s_recovery']:.3f}s vs "
              f"{row['wall_s_clean']:.3f}s clean")
    ckpt = payload["checkpoint"]
    print(f"checkpoint: restore {ckpt['wall_s_restore']:.3f}s vs "
          f"first {ckpt['wall_s_first']:.3f}s, "
          f"{ckpt['rdds_materialized_on_restore']} RDDs rematerialized")

    worst = max(row["recomputed_partitions"]
                for row in payload["recovery"].values())
    if worst >= PARTITIONS:
        print(f"RECOVERY REGRESSION: recomputed {worst} partitions — "
              f"no better than a full stage rerun")
        return 1
    if any(row["recomputed_partitions"] < 1
           for row in payload["recovery"].values()):
        print("RECOVERY REGRESSION: fault injected but nothing recomputed")
        return 1
    if args.json:
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
