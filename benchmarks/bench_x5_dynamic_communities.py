"""X5 / §7 — community dynamics over time.

"We also plan to understand the dynamics in terms of formation or
disbanding of community clusters over time." The investment stream
carries day stamps, so the graph is replayed in cumulative windows and
communities matched across windows by Jaccard similarity.
"""

from benchmarks.conftest import BENCH_SEED, paper_row
from repro.analysis.dynamic_communities import (default_coda_detector,
                                                track_communities)

WINDOWS = 4


def test_x5_dynamic_communities(benchmark, bench_platform):
    world = bench_platform.world
    detector = default_coda_detector(
        num_communities=world.config.num_communities,
        max_iters=15, seed=BENCH_SEED)

    report = benchmark.pedantic(
        lambda: track_communities(world.investments, WINDOWS, detector),
        rounds=3, iterations=1)

    counts = report.counts()
    per_window = [len(s.communities) for s in report.snapshots]
    print(f"\n§7 — community lifecycle over {WINDOWS} windows")
    print(paper_row("communities per window", "grows with the graph",
                    " → ".join(map(str, per_window))))
    for kind in ("born", "continued", "merged", "split", "dissolved"):
        print(paper_row(f"{kind} events", "—", f"{counts.get(kind, 0)}"))

    assert len(report.snapshots) == WINDOWS
    # the graph only accumulates edges, so detection never collapses
    assert report.snapshots[-1].communities
    # most established communities persist between consecutive windows
    assert counts.get("continued", 0) >= counts.get("dissolved", 0)
    assert counts.get("born", 0) >= 1
