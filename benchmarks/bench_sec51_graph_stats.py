"""E3 / §5.1 — bipartite graph construction and degree concentration.

Paper: 46,966 investors, 59,953 companies, 158,199 edges (2.6 investors
per company); deg≥3 → 30% of investors / 75% of edges; deg≥4 →
22.2%/68.3%; deg≥5 → 17.0%/62.0%.
"""

from benchmarks.conftest import paper_row

PAPER_ROWS = {3: (30.0, 75.0), 4: (22.2, 68.3), 5: (17.0, 62.0)}


def test_sec51_graph_build_and_stats(benchmark, bench_platform):
    from repro.graph.build import build_investor_graph
    from repro.analysis.concentration import concentration_report

    graph = benchmark.pedantic(
        lambda: build_investor_graph(bench_platform.sc, bench_platform.dfs),
        rounds=3, iterations=1)
    report = concentration_report(graph)

    scale = bench_platform.world.config.scale
    print("\n§5.1 — investor graph")
    print(report.render())
    print(paper_row("investors", f"46,966 × {scale:.4f}",
                    f"{graph.num_investors:,}"))
    print(paper_row("companies", f"59,953 × {scale:.4f}",
                    f"{graph.num_companies:,}"))
    print(paper_row("edges", f"158,199 × {scale:.4f}",
                    f"{graph.num_edges:,}"))
    print(paper_row("investors per company", "2.6",
                    f"{graph.mean_investors_per_company:.2f}"))
    for row in report.rows:
        paper_inv, paper_edge = PAPER_ROWS[row.min_degree]
        print(paper_row(f"deg≥{row.min_degree} investors/edges",
                        f"{paper_inv}% / {paper_edge}%",
                        f"{100 * row.investor_fraction:.1f}% / "
                        f"{100 * row.edge_fraction:.1f}%"))

    assert 2.0 < graph.mean_investors_per_company < 4.0
    for row in report.rows:
        # the concentration phenomenon: few investors, most edges
        assert row.edge_fraction > 1.8 * row.investor_fraction
        paper_inv, paper_edge = PAPER_ROWS[row.min_degree]
        assert abs(100 * row.investor_fraction - paper_inv) < 12
        assert abs(100 * row.edge_fraction - paper_edge) < 15
