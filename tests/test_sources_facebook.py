"""Tests for the simulated Facebook Graph API (OAuth dance included)."""

import pytest

from repro.sources.facebook import FacebookServer, SHORT_TTL


@pytest.fixture()
def server(tiny_world):
    return FacebookServer(tiny_world)


def _login(server):
    return server.post("/oauth/access_token",
                       {"app_id": "a", "app_secret": "s"}).body["access_token"]


def _slug(tiny_world):
    page = next(iter(tiny_world.facebook_pages.values()))
    return tiny_world.companies[page.company_id].slug, page


class TestOAuth:
    def test_login_requires_credentials(self, server):
        assert server.post("/oauth/access_token", {}).status == 400

    def test_short_token_works_initially(self, server, tiny_world):
        token = _login(server)
        slug, page = _slug(tiny_world)
        body = server.get(f"/pg/{slug}", {"access_token": token}).body
        assert body["fan_count"] == page.likes

    def test_short_token_expires(self, server, tiny_world):
        token = _login(server)
        slug, _page = _slug(tiny_world)
        server.clock.sleep(SHORT_TTL + 1)
        assert server.get(f"/pg/{slug}",
                          {"access_token": token}).status == 401

    def test_exchange_yields_long_lived(self, server, tiny_world):
        short = _login(server)
        long_lived = server.get("/oauth/exchange",
                                {"fb_exchange_token": short}
                                ).body["access_token"]
        slug, _page = _slug(tiny_world)
        server.clock.sleep(SHORT_TTL + 1)
        assert server.get(f"/pg/{slug}",
                          {"access_token": long_lived}).ok

    def test_exchange_revokes_short_token(self, server, tiny_world):
        short = _login(server)
        server.get("/oauth/exchange", {"fb_exchange_token": short})
        slug, _page = _slug(tiny_world)
        assert server.get(f"/pg/{slug}",
                          {"access_token": short}).status == 401

    def test_exchange_of_garbage_401(self, server):
        assert server.get("/oauth/exchange",
                          {"fb_exchange_token": "junk"}).status == 401


class TestPages:
    def test_unknown_page_404(self, server):
        token = _login(server)
        assert server.get("/pg/ghost-co",
                          {"access_token": token}).status == 404

    def test_page_document_shape(self, server, tiny_world):
        token = _login(server)
        slug, page = _slug(tiny_world)
        body = server.get(f"/pg/{slug}", {"access_token": token}).body
        assert body["id"] == str(page.page_id)
        assert body["posts_count"] == page.post_count
        assert isinstance(body["recent_posts"], list)

    def test_page_count(self, server, tiny_world):
        assert server.page_count == len(tiny_world.facebook_pages)
