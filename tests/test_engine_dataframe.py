"""Tests for the DataFrame layer."""

import pytest

from repro.engine.context import SparkLiteContext
from repro.engine.dataframe import DataFrame
from repro.util.errors import EngineError


@pytest.fixture(scope="module")
def sc():
    context = SparkLiteContext(parallelism=2)
    yield context
    context.stop()


@pytest.fixture()
def people(sc):
    return DataFrame.from_records(sc, [
        {"name": "ann", "city": "sf", "age": 30},
        {"name": "bob", "city": "nyc", "age": 40},
        {"name": "cat", "city": "sf", "age": 20},
        {"name": "dan", "city": "nyc", "age": 50},
    ])


class TestProjectionsAndFilters:
    def test_select(self, people):
        rows = people.select("name").collect()
        assert all(set(row) == {"name"} for row in rows)

    def test_where(self, people):
        assert people.where(lambda r: r["city"] == "sf").count() == 2

    def test_with_column(self, people):
        rows = people.with_column("next_age",
                                  lambda r: r["age"] + 1).collect()
        assert all(row["next_age"] == row["age"] + 1 for row in rows)

    def test_with_column_tracks_schema(self, people):
        assert "flag" in people.with_column("flag", lambda r: 1).columns

    def test_drop(self, people):
        rows = people.drop("age", "city").collect()
        assert all(set(row) == {"name"} for row in rows)

    def test_column_values(self, people):
        assert sorted(people.column_values("age")) == [20, 30, 40, 50]


class TestGroupBy:
    def test_count_sum_avg(self, people):
        out = {row["city"]: row for row in
               people.group_by("city").agg(
                   n=("name", "count"),
                   total=("age", "sum"),
                   avg_age=("age", "avg")).collect()}
        assert out["sf"]["n"] == 2
        assert out["sf"]["total"] == 50
        assert out["nyc"]["avg_age"] == 45.0

    def test_min_max(self, people):
        out = {row["city"]: row for row in
               people.group_by("city").agg(
                   lo=("age", "min"), hi=("age", "max")).collect()}
        assert (out["sf"]["lo"], out["sf"]["hi"]) == (20, 30)

    def test_count_distinct(self, people):
        out = people.group_by("city").agg(
            cities=("city", "count_distinct")).collect()
        assert all(row["cities"] == 1 for row in out)

    def test_unknown_aggregate_rejected(self, people):
        with pytest.raises(EngineError):
            people.group_by("city").agg(bad=("age", "mode"))

    def test_group_by_requires_keys(self, people):
        with pytest.raises(EngineError):
            people.group_by()


class TestJoinsAndOrdering:
    def test_inner_join(self, sc, people):
        cities = DataFrame.from_records(sc, [
            {"city": "sf", "state": "CA"}])
        rows = people.join(cities, on="city").collect()
        assert len(rows) == 2
        assert all(row["state"] == "CA" for row in rows)

    def test_left_join_keeps_unmatched(self, sc, people):
        cities = DataFrame.from_records(sc, [{"city": "sf", "state": "CA"}])
        rows = people.join(cities, on="city", how="left").collect()
        assert len(rows) == 4
        nyc = [r for r in rows if r["city"] == "nyc"]
        assert all("state" not in r or r["state"] is None for r in nyc)

    def test_unsupported_join_type(self, sc, people):
        with pytest.raises(EngineError):
            people.join(people, on="city", how="cross")

    def test_order_by(self, people):
        ages = [r["age"] for r in people.order_by("age").collect()]
        assert ages == [20, 30, 40, 50]
        ages = [r["age"] for r in
                people.order_by("age", ascending=False).collect()]
        assert ages == [50, 40, 30, 20]

    def test_limit(self, people):
        assert people.order_by("age").limit(2).count() == 2
