"""Tests for token pooling and Twitter token provisioning."""

import pytest

from repro.crawl.tokens import TokenPool, provision_twitter_tokens
from repro.sources.twitter import TwitterServer
from repro.util.clock import SimClock
from repro.util.errors import CrawlError


class TestTokenPool:
    def test_round_robin(self):
        pool = TokenPool(["a", "b"], SimClock())
        assert [pool.acquire() for _ in range(4)] == ["a", "b", "a", "b"]

    def test_empty_rejected(self):
        with pytest.raises(CrawlError):
            TokenPool([], SimClock())

    def test_benched_token_skipped(self):
        clock = SimClock()
        pool = TokenPool(["a", "b"], clock)
        pool.bench("a", retry_after=100.0)
        assert [pool.acquire() for _ in range(3)] == ["b", "b", "b"]

    def test_bench_expires(self):
        clock = SimClock()
        pool = TokenPool(["a", "b"], clock)
        pool.bench("a", retry_after=10.0)
        clock.sleep(11.0)
        assert "a" in {pool.acquire() for _ in range(2)}

    def test_all_benched_sleeps_until_free(self):
        clock = SimClock()
        pool = TokenPool(["a", "b"], clock)
        pool.bench("a", 50.0)
        pool.bench("b", 30.0)
        token = pool.acquire()
        assert token == "b"
        assert clock.now() == pytest.approx(30.0)

    def test_next_available_in(self):
        clock = SimClock()
        pool = TokenPool(["a"], clock)
        assert pool.next_available_in() == 0.0
        pool.bench("a", 12.0)
        assert pool.next_available_in() == pytest.approx(12.0)

    def test_usage_counter(self):
        pool = TokenPool(["a", "b"], SimClock())
        for _ in range(3):
            pool.acquire()
        assert pool.usage == {"a": 2, "b": 1}


class TestProvisioning:
    def test_respects_five_app_cap(self, tiny_world):
        server = TwitterServer(tiny_world)
        tokens = provision_twitter_tokens(server, 12)
        assert len(tokens) == 12
        assert len(set(tokens)) == 12

    def test_exact_multiple(self, tiny_world):
        server = TwitterServer(tiny_world)
        assert len(provision_twitter_tokens(server, 5)) == 5

    def test_zero_rejected(self, tiny_world):
        server = TwitterServer(tiny_world)
        with pytest.raises(CrawlError):
            provision_twitter_tokens(server, 0)
