"""Differential tests: every backend against the SerialBackend oracle.

A battery of lineage shapes — narrow chains, shuffles, joins, cached
re-use, empty partitions — runs through the serial, thread and process
backends; outputs must be *identical* (same elements, same order), not
just equivalent. The serial backend is the reference semantics; thread
and process are only allowed to be faster, never different.

Functions used by the battery are module-level on purpose so the
process backend genuinely ships them to pool workers; a couple of
scenarios use lambdas deliberately to pin the in-driver fallback path.
"""

import operator

import pytest

from repro.engine.backends import (BACKENDS, ProcessBackend, SerialBackend,
                                   ThreadBackend, resolve_backend)
from repro.engine.context import SparkLiteContext
from repro.engine.dataframe import DataFrame
from repro.util.errors import EngineError

ALL_BACKENDS = sorted(BACKENDS)
NON_SERIAL = [b for b in ALL_BACKENDS if b != "serial"]


# --------------------------------------------------------- battery functions
def _double(x):
    return x * 2


def _is_even(x):
    return x % 2 == 0


def _expand(x):
    return [x, -x]


def _mod5_pair(x):
    return (x % 5, x)


def _mod3(x):
    return x % 3


def _negate(v):
    return -v


def _nothing(_x):
    return False


# ----------------------------------------------------------------- scenarios
def scenario_narrow_chain(sc):
    return (sc.parallelize(range(50), 4)
            .map(_double).filter(_is_even).flat_map(_expand).collect())


def scenario_map_partitions(sc):
    return (sc.parallelize(range(30), 5)
            .map_partitions(sorted).collect())


def scenario_key_by_values(sc):
    return (sc.parallelize(range(20), 3)
            .key_by(_mod3).map_values(_negate).collect())


def scenario_reduce_by_key(sc):
    return (sc.parallelize(range(200), 6)
            .map(_mod5_pair).reduce_by_key(operator.add).collect())


def scenario_group_by_key(sc):
    return (sc.parallelize(range(40), 4)
            .map(_mod5_pair).group_by_key().collect())


def scenario_aggregate_by_key(sc):
    return (sc.parallelize(range(60), 5)
            .map(_mod5_pair)
            .aggregate_by_key(0, operator.add, operator.add)
            .collect())


def scenario_distinct(sc):
    return sc.parallelize([1, 2, 2, 3, 1, 4, 4, 4], 3).distinct().collect()


def scenario_repartition(sc):
    return sc.parallelize(range(23), 4).repartition(7).collect()


def scenario_union(sc):
    left = sc.parallelize(range(10), 2).map(_double)
    right = sc.parallelize(range(5), 3)
    return left.union(right).collect()


def scenario_join(sc):
    left = sc.parallelize([(k % 4, k) for k in range(12)], 3)
    right = sc.parallelize([(k % 4, -k) for k in range(8)], 2)
    return left.join(right).collect()


def scenario_left_outer_join(sc):
    left = sc.parallelize([(1, "a"), (2, "b"), (9, "c")], 2)
    right = sc.parallelize([(1, "x"), (1, "y")], 1)
    return left.left_outer_join(right).collect()


def scenario_sort_by(sc):
    return (sc.parallelize([5, 3, 9, 1, 7, 2], 3)
            .sort_by(_negate).collect())


def scenario_sort_by_range_partitioned(sc):
    # enough rows and duplicate keys to exercise the sampled cut points
    data = [(i * 37) % 19 for i in range(120)]
    return sc.parallelize(data, 6).sort_by(_identity_key).collect()


def scenario_sort_by_descending(sc):
    data = [(i * 11) % 13 for i in range(60)]
    return (sc.parallelize(data, 4)
            .sort_by(_identity_key, ascending=False).collect())


def scenario_count_by_key(sc):
    return (sc.parallelize(range(90), 5)
            .map(_mod5_pair).count_by_key_rdd().collect())


def scenario_take_prefix(sc):
    return sc.parallelize(range(200), 8).map(_double).take(13)


def scenario_zip_with_index(sc):
    return sc.parallelize(list("abcdefg"), 3).zip_with_index().collect()


def scenario_cached_reuse(sc):
    base = sc.parallelize(range(30), 3).map(_double).cache()
    first = base.map(_mod5_pair).reduce_by_key(operator.add).collect()
    second = base.collect()  # second job reads the cache
    return [first, second]


def scenario_empty_partitions(sc):
    return (sc.parallelize(range(8), 4)
            .filter(_nothing)
            .map(_mod5_pair)
            .reduce_by_key(operator.add)
            .collect())


def scenario_empty_rdd(sc):
    return sc.empty().map(_double).collect()


def scenario_lambda_fallback(sc):
    # unpicklable closures: process backend must fall back, not fail
    return (sc.parallelize(range(40), 4)
            .map(lambda x: (x % 7, x * 3))
            .reduce_by_key(lambda a, b: a + b)
            .collect())


def scenario_dataframe_pipeline(sc):
    records = [{"market": f"m{i % 4}", "raised": i * 100, "ok": i % 2 == 0}
               for i in range(40)]
    df = DataFrame.from_records(sc, records, num_partitions=4)
    out = (df.where(_row_ok)
             .with_column("raised_k", _raised_k)
             .group_by("market")
             .agg(n=("market", "count"), total=("raised", "sum"),
                  avg_k=("raised_k", "avg"))
             .order_by("market"))
    return out.collect()


def _row_ok(row):
    return row["ok"]


def _raised_k(row):
    return row["raised"] / 1000.0


def _identity_key(x):
    return x


SCENARIOS = {
    name[len("scenario_"):]: fn
    for name, fn in sorted(globals().items())
    if name.startswith("scenario_")
}


# --------------------------------------------------------------------- tests
@pytest.fixture(scope="module")
def contexts():
    ctxs = {name: SparkLiteContext(parallelism=3, backend=name)
            for name in ALL_BACKENDS}
    yield ctxs
    for ctx in ctxs.values():
        ctx.stop()


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("backend", NON_SERIAL)
def test_backend_matches_serial_oracle(contexts, backend, scenario):
    fn = SCENARIOS[scenario]
    expected = fn(contexts["serial"])
    actual = fn(contexts[backend])
    assert actual == expected, f"{backend} diverged on {scenario}"
    assert repr(actual) == repr(expected)  # identical, not just equivalent


class TestProcessBackendBehaviour:
    def test_picklable_pipeline_uses_the_pool(self, contexts):
        sc = contexts["process"]
        scenario_reduce_by_key(sc)
        assert sc.last_job_metrics.backend == "process"
        assert sc.last_job_metrics.fallbacks == 0

    def test_lambda_pipeline_falls_back_but_succeeds(self, contexts):
        sc = contexts["process"]
        result = scenario_lambda_fallback(sc)
        assert sorted(result) == sorted(
            scenario_lambda_fallback(contexts["serial"]))
        assert sc.last_job_metrics.fallbacks > 0

    def test_unpicklable_data_falls_back(self):
        with SparkLiteContext(parallelism=2, backend="process") as sc:
            # a generator inside the data can't cross the pickle wall
            data = [(i, (x for x in range(i))) for i in range(6)]
            out = sc.parallelize(data, 3).map(_first_of_pair).collect()
            assert out == [0, 1, 2, 3, 4, 5]


def _first_of_pair(pair):
    return pair[0]


class TestShuffleFastPathDifferential:
    """The fast path must be invisible in results: combined vs
    uncombined shuffles, compressed blocks, and broadcast vs hash joins
    all produce identical output on every backend."""

    COMBINABLE = ["reduce_by_key", "aggregate_by_key", "distinct",
                  "count_by_key", "sort_by_range_partitioned"]

    @pytest.mark.parametrize("scenario", COMBINABLE)
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_combine_on_off_identical(self, backend, scenario):
        fn = SCENARIOS[scenario]
        with SparkLiteContext(parallelism=3, backend=backend) as on, \
                SparkLiteContext(parallelism=3, backend=backend,
                                 shuffle_combine=False) as off:
            assert repr(fn(on)) == repr(fn(off))

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_compressed_shuffle_identical(self, backend):
        fn = SCENARIOS["reduce_by_key"]
        with SparkLiteContext(parallelism=3, backend=backend) as plain, \
                SparkLiteContext(parallelism=3, backend=backend,
                                 shuffle_compress=True,
                                 shuffle_compress_threshold=1) as squeezed:
            assert repr(fn(plain)) == repr(fn(squeezed))

    @pytest.mark.parametrize("scenario", ["join", "left_outer_join"])
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_broadcast_join_matches_hash_join(self, backend, scenario):
        fn = SCENARIOS[scenario]
        with SparkLiteContext(parallelism=3, backend=backend) as hashed, \
                SparkLiteContext(parallelism=3, backend=backend,
                                 broadcast_join_threshold=1 << 20) as bcast:
            hash_out = fn(hashed)
            assert hashed.last_job_metrics.broadcast_joins == 0
            bcast_out = fn(bcast)
            assert bcast.last_job_metrics.broadcast_joins == 1
            assert bcast.last_job_metrics.shuffles == 0
            # broadcast streams big-side order; compare as multisets
            assert sorted(map(repr, bcast_out)) == \
                sorted(map(repr, hash_out))


class TestColumnarDifferential:
    """The columnar engine must also be invisible: for every scenario,
    every backend, the batch-at-a-time path (tiny batches on purpose,
    so real jobs span many) produces output identical to the row-oracle
    serial run — same elements, same order, same reprs."""

    @pytest.fixture(scope="class")
    def columnar_contexts(self):
        ctxs = {name: SparkLiteContext(parallelism=3, backend=name,
                                       engine_columnar=True,
                                       batch_rows=16)
                for name in ALL_BACKENDS}
        yield ctxs
        for ctx in ctxs.values():
            ctx.stop()

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_columnar_matches_row_oracle(self, contexts, columnar_contexts,
                                         backend, scenario):
        fn = SCENARIOS[scenario]
        expected = fn(contexts["serial"])  # row engine, serial oracle
        actual = fn(columnar_contexts[backend])
        assert repr(actual) == repr(expected), \
            f"columnar {backend} diverged on {scenario}"

    @pytest.mark.parametrize("scenario", ["reduce_by_key", "join",
                                          "sort_by_range_partitioned"])
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_columnar_compressed_identical(self, contexts, backend,
                                           scenario):
        fn = SCENARIOS[scenario]
        expected = fn(contexts["serial"])
        with SparkLiteContext(parallelism=3, backend=backend,
                              engine_columnar=True, batch_rows=16,
                              shuffle_compress=True,
                              shuffle_compress_threshold=1) as squeezed:
            assert repr(fn(squeezed)) == repr(expected)

    @pytest.mark.parametrize("scenario",
                             ["reduce_by_key", "group_by_key", "join"])
    def test_columnar_shm_forced_identical(self, contexts, scenario):
        from repro.engine.columnar import (SHM_BASE_PREFIX, list_segments,
                                           shm_available)
        if not shm_available():
            pytest.skip("no shared memory on this platform")
        fn = SCENARIOS[scenario]
        expected = fn(contexts["serial"])
        with SparkLiteContext(parallelism=3, backend="serial",
                              engine_columnar=True, batch_rows=16,
                              shuffle_shm=True) as shm:
            assert repr(fn(shm)) == repr(expected)
            assert shm.last_job_metrics.shuffle_bytes_shm > 0
        assert list_segments(SHM_BASE_PREFIX) == []

    def test_columnar_process_pipeline_stays_on_the_pool(self):
        from repro.engine.columnar import shm_available
        with SparkLiteContext(parallelism=3, backend="process",
                              engine_columnar=True, batch_rows=16) as sc:
            result = scenario_reduce_by_key(sc)
            metrics = sc.last_job_metrics
        with SparkLiteContext(parallelism=3, backend="serial") as oracle:
            assert repr(result) == repr(scenario_reduce_by_key(oracle))
        assert metrics.fallbacks == 0
        if shm_available():
            # the exchange rode shared memory, and the split accounts
            # for every byte moved
            assert metrics.shuffle_bytes_shm > 0
            assert metrics.shuffle_bytes == \
                metrics.shuffle_bytes_shm + metrics.shuffle_bytes_pickled


class TestBackendResolution:
    def test_resolve_by_name(self):
        assert isinstance(resolve_backend("serial", 2), SerialBackend)
        assert isinstance(resolve_backend("thread", 2), ThreadBackend)
        assert isinstance(resolve_backend("process", 2), ProcessBackend)

    def test_default_is_thread(self):
        assert isinstance(resolve_backend(None, 2), ThreadBackend)
        with SparkLiteContext(parallelism=2) as sc:
            assert sc.backend.name == "thread"

    def test_instance_passthrough_adopts_parallelism(self):
        backend = SerialBackend()
        assert resolve_backend(backend, 5) is backend
        assert backend.parallelism == 5

    def test_unknown_name_rejected(self):
        with pytest.raises(EngineError):
            resolve_backend("gpu", 2)
        with pytest.raises(EngineError):
            resolve_backend(42, 2)

    def test_shuffle_placement_agrees_across_backends(self):
        """Same key → same output partition on every backend (the
        property builtin hash() could not provide across processes)."""
        partitioned = {}
        for name in ALL_BACKENDS:
            with SparkLiteContext(parallelism=2, backend=name) as sc:
                rdd = (sc.parallelize([(f"key-{i}", 1) for i in range(40)], 4)
                       .reduce_by_key(operator.add))
                partitioned[name] = sc._run_job_partitions(rdd)
        assert partitioned["serial"] == partitioned["thread"]
        assert partitioned["serial"] == partitioned["process"]
