"""Tests for the simulated AngelList API."""

import pytest

from repro.sources.angellist import AngelListServer, PER_PAGE


@pytest.fixture(scope="module")
def server(tiny_world):
    return AngelListServer(tiny_world)


@pytest.fixture(scope="module")
def token(server):
    return server.issue_token("test")


def _auth(token):
    return {"Authorization": f"Bearer {token}"}


class TestAuth:
    def test_requires_token(self, server):
        assert server.get("/1/startups", {"filter": "raising"}).status == 401

    def test_bad_token_rejected(self, server):
        response = server.get("/1/startups", {"filter": "raising"},
                              {"Authorization": "Bearer nope"})
        assert response.status == 401


class TestListing:
    def test_only_raising_filter_supported(self, server, token):
        assert server.get("/1/startups", {"filter": "all"},
                          _auth(token)).status == 400

    def test_lists_only_raising_startups(self, server, token, tiny_world):
        body = server.get("/1/startups", {"filter": "raising", "page": 1},
                          _auth(token)).body
        raising = [c for c in tiny_world.companies.values()
                   if c.currently_raising]
        assert body["total"] == len(raising)

    def test_pagination_collects_all(self, server, token, tiny_world):
        collected = []
        page = 1
        while True:
            body = server.get("/1/startups",
                              {"filter": "raising", "page": page},
                              _auth(token)).body
            collected.extend(s["id"] for s in body["startups"])
            if page >= body["last_page"]:
                break
            page += 1
        raising = {c.company_id for c in tiny_world.companies.values()
                   if c.currently_raising}
        assert set(collected) == raising


class TestStartupProfile:
    def test_profile_fields(self, server, token, tiny_world):
        cid = next(iter(tiny_world.companies))
        body = server.get(f"/1/startups/{cid}", {}, _auth(token)).body
        assert body["id"] == cid
        assert "facebook_url" in body
        assert "crunchbase_url" in body
        assert "video_url" in body

    def test_unknown_startup_404(self, server, token):
        assert server.get("/1/startups/999999999", {},
                          _auth(token)).status == 404

    def test_non_numeric_id_404(self, server, token):
        assert server.get("/1/startups/abc", {}, _auth(token)).status == 404

    def test_urls_resolve_against_other_sources(self, server, token,
                                                tiny_world):
        with_fb = next(c for c in tiny_world.companies.values()
                       if c.facebook_page_id is not None)
        body = server.get(f"/1/startups/{with_fb.company_id}", {},
                          _auth(token)).body
        assert body["facebook_url"].startswith("https://facebook.example/")

    def test_video_url_iff_has_video(self, server, token, tiny_world):
        for company in list(tiny_world.companies.values())[:50]:
            body = server.get(f"/1/startups/{company.company_id}", {},
                              _auth(token)).body
            assert bool(body["video_url"]) == company.has_video


class TestFollowersAndFollowing:
    def test_followers_match_world(self, server, token, tiny_world):
        followers = tiny_world.company_followers()
        cid = max(followers, key=lambda c: len(followers[c]))
        collected = []
        page = 1
        while True:
            body = server.get(f"/1/startups/{cid}/followers",
                              {"page": page}, _auth(token)).body
            collected.extend(u["id"] for u in body["users"])
            if page >= body["last_page"]:
                break
            page += 1
        assert sorted(collected) == sorted(followers[cid])

    def test_following_startup_pages(self, server, token, tiny_world):
        uid = max(tiny_world.users,
                  key=lambda u: len(tiny_world.users[u].follows_companies))
        expected = tiny_world.users[uid].follows_companies
        body = server.get(f"/1/users/{uid}/following",
                          {"type": "startup", "page": 1},
                          _auth(token)).body
        assert [i["id"] for i in body["items"]] == expected[:PER_PAGE]

    def test_unknown_follow_type(self, server, token, tiny_world):
        uid = next(iter(tiny_world.users))
        assert server.get(f"/1/users/{uid}/following", {"type": "cats"},
                          _auth(token)).status == 400

    def test_investments_endpoint(self, server, token, tiny_world):
        investor = next(u for u in tiny_world.users.values()
                        if u.investments)
        body = server.get(f"/1/users/{investor.user_id}/investments",
                          {"page": 1}, _auth(token)).body
        ids = [i["startup_id"] for i in body["investments"]]
        assert ids == investor.investments[:PER_PAGE]


class TestRateLimit:
    def test_429_after_limit(self, tiny_world):
        server = AngelListServer(tiny_world)
        token = server.issue_token("hammer")
        cid = next(iter(tiny_world.companies))
        statuses = [server.get(f"/1/startups/{cid}", {},
                               _auth(token)).status
                    for _ in range(1001)]
        assert statuses[-1] == 429
        assert statuses[0] == 200

    def test_retry_after_header(self, tiny_world):
        server = AngelListServer(tiny_world)
        token = server.issue_token("hammer")
        cid = next(iter(tiny_world.companies))
        last = None
        for _ in range(1001):
            last = server.get(f"/1/startups/{cid}", {}, _auth(token))
        assert float(last.headers["Retry-After"]) > 0

    def test_window_resets(self, tiny_world):
        server = AngelListServer(tiny_world)
        token = server.issue_token("hammer")
        cid = next(iter(tiny_world.companies))
        for _ in range(1000):
            server.get(f"/1/startups/{cid}", {}, _auth(token))
        assert server.get(f"/1/startups/{cid}", {},
                          _auth(token)).status == 429
        server.clock.sleep(3601)
        assert server.get(f"/1/startups/{cid}", {},
                          _auth(token)).status == 200
