"""Tests for small numeric helpers."""

import pytest

from repro.util.stats import (describe, mean, median, quantile,
                              weighted_choice_index)
from repro.util.timer import Timer


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_median_odd(self):
        assert median([5, 1, 3]) == 3.0

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_quantile(self):
        assert quantile(list(range(101)), 0.5) == 50.0

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            quantile([1, 2], 1.5)

    def test_describe_keys(self):
        d = describe([1.0, 2.0, 10.0])
        assert d["count"] == 3
        assert d["max"] == 10.0
        assert d["min"] == 1.0
        assert d["p90"] <= d["p99"] <= d["max"]

    def test_describe_empty(self):
        assert describe([])["count"] == 0


class TestWeightedChoice:
    def test_deterministic_mapping(self):
        weights = [1.0, 1.0, 2.0]
        assert weighted_choice_index(weights, 0.0) == 0
        assert weighted_choice_index(weights, 0.30) == 1
        assert weighted_choice_index(weights, 0.99) == 2

    def test_invalid_draw(self):
        with pytest.raises(ValueError):
            weighted_choice_index([1.0], 1.0)

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice_index([0.0, 0.0], 0.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice_index([1.0, -1.0, 5.0], 0.9)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(10000))
        assert t.elapsed >= 0.0

    def test_restart(self):
        t = Timer()
        with t:
            pass
        t.restart()
        assert t.elapsed == 0.0
