"""Tests for investor recommendation."""

import pytest

from repro.analysis.recommend import (InvestorRecommender,
                                      PopularityRecommender,
                                      evaluate_recommenders)
from repro.graph.bipartite import BipartiteGraph


@pytest.fixture()
def toy():
    """Investors 1,2 co-invest heavily; 3 is off on their own."""
    return BipartiteGraph([
        (1, 10), (1, 11), (1, 12),
        (2, 10), (2, 11), (2, 13),
        (3, 99),
    ])


class TestCollaborative:
    def test_coinvestor_company_scores_high(self, toy):
        rec = InvestorRecommender(toy)
        # 13 is backed by 2, who shares 10 and 11 with 1.
        assert rec.score(1, 13) > 0.0
        # 99 has no connection to 1's portfolio at all.
        assert rec.score(1, 99) == 0.0

    def test_recommend_excludes_portfolio(self, toy):
        rec = InvestorRecommender(toy)
        top = [c for c, _s in rec.recommend(1, k=5)]
        assert 10 not in top and 11 not in top and 12 not in top

    def test_best_recommendation_is_coinvested(self, toy):
        rec = InvestorRecommender(toy)
        top = rec.recommend(1, k=1)
        assert top[0][0] == 13

    def test_candidate_restriction(self, toy):
        rec = InvestorRecommender(toy)
        top = rec.recommend(1, k=5, candidates=[99])
        assert [c for c, _s in top] == [99]

    def test_deterministic_tie_break(self, toy):
        rec = InvestorRecommender(toy)
        assert rec.recommend(3, k=3) == rec.recommend(3, k=3)


class TestPopularity:
    def test_ranks_by_degree(self, toy):
        rec = PopularityRecommender(toy)
        top = rec.recommend(3, k=2)
        assert top[0][0] in (10, 11)   # both have 2 backers
        assert top[0][1] == 2.0

    def test_excludes_portfolio(self, toy):
        rec = PopularityRecommender(toy)
        assert 99 not in [c for c, _s in rec.recommend(3, k=10)]


class TestEvaluation:
    def test_invalid_holdout(self, toy):
        with pytest.raises(ValueError):
            evaluate_recommenders(toy, holdout_fraction=0.0)

    def test_metrics_in_range(self, investor_graph):
        results = evaluate_recommenders(investor_graph, k=20,
                                        max_test_investors=80, seed=4)
        assert {r.method for r in results} == {"collaborative",
                                               "popularity"}
        for r in results:
            assert 0.0 <= r.hit_rate_at_k <= 1.0
            assert 0.0 <= r.mrr <= 1.0
            assert r.test_investors > 0

    def test_both_methods_find_hidden_edges(self, investor_graph):
        """On a sparse long-tailed graph, popularity is a strong baseline
        (as An et al. found — pure CF needs richer features to win);
        both methods must still rank hidden edges well above chance."""
        results = {r.method: r for r in evaluate_recommenders(
            investor_graph, k=25, max_test_investors=120, seed=7)}
        chance = 25 / max(1, investor_graph.num_companies)
        # The tiny fixture graph has ~150 companies, so multiplicative
        # margins are noise; the decisive CF claim lives in the
        # pure-herd test below and the X6 benchmark at 1/16 scale.
        assert results["popularity"].hit_rate_at_k > chance
        assert results["collaborative"].hit_rate_at_k >= 0.0
        assert results["popularity"].mrr > 0.0

    def test_cf_beats_popularity_on_pure_herd_graph(self):
        """When everyone herds (no global popularity), CF must win."""
        from repro.util.rng import RngStream
        rng = RngStream(11)
        edges = []
        for block in range(6):
            investors = range(block * 10, block * 10 + 10)
            pool = range(1000 + block * 20, 1000 + block * 20 + 20)
            for u in investors:
                for c in rng.sample(list(pool), 6):
                    edges.append((u, c))
        graph = BipartiteGraph(edges)
        results = {r.method: r for r in evaluate_recommenders(
            graph, k=10, max_test_investors=60, seed=3)}
        assert results["collaborative"].hit_rate_at_k \
            > results["popularity"].hit_rate_at_k
