"""Tests for the ExploratoryPlatform and its plug-in registry."""

import pytest

from repro.core.platform import ExploratoryPlatform, PlatformConfig
from repro.core.plugins import PluginRegistry
from repro.util.errors import ConfigError
from repro.world.config import WorldConfig


class TestPluginRegistry:
    def test_register_and_get(self):
        registry = PluginRegistry()
        registry.register("x", lambda p: 42, "desc")
        assert registry.get("x").run(None) == 42
        assert "x" in registry

    def test_duplicate_rejected(self):
        registry = PluginRegistry()
        registry.register("x", lambda p: 1)
        with pytest.raises(ConfigError):
            registry.register("x", lambda p: 2)

    def test_replace_allowed(self):
        registry = PluginRegistry()
        registry.register("x", lambda p: 1)
        registry.register("x", lambda p: 2, replace=True)
        assert registry.get("x").run(None) == 2

    def test_unknown_plugin_lists_known(self):
        registry = PluginRegistry()
        registry.register("known", lambda p: 1)
        with pytest.raises(ConfigError, match="known"):
            registry.get("mystery")


class TestPlatform:
    def test_builtin_plugins_registered(self, crawled_platform):
        names = crawled_platform.plugins.names()
        for expected in ("engagement_table", "investor_activity",
                         "concentration", "community_study",
                         "success_prediction"):
            assert expected in names

    def test_analytics_require_crawl(self, tiny_world):
        platform = ExploratoryPlatform(tiny_world)
        with pytest.raises(ConfigError):
            platform.run_plugin("engagement_table")
        platform.close()

    def test_double_crawl_rejected(self, crawled_platform):
        with pytest.raises(ConfigError):
            crawled_platform.run_full_crawl()

    def test_graph_memoized(self, crawled_platform):
        assert crawled_platform.investor_graph() \
            is crawled_platform.investor_graph()

    def test_custom_plugin(self, crawled_platform):
        crawled_platform.plugins.register(
            "company_count",
            lambda platform: len(platform.world.companies),
            replace=True)
        assert crawled_platform.run_plugin("company_count") \
            == len(crawled_platform.world.companies)

    def test_crawl_summary_totals(self, crawled_platform):
        summary = crawled_platform.crawl_summary
        assert summary.total_requests > 0
        assert summary.angellist.startups \
            == len(crawled_platform.world.companies)

    def test_concentration_plugin(self, crawled_platform):
        report = crawled_platform.run_plugin("concentration")
        assert report.num_edges == crawled_platform.investor_graph().num_edges
        assert "bipartite graph" in report.render()
