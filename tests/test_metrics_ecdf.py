"""Tests for the ECDF and PDF estimators."""

import numpy as np
import pytest

from repro.metrics.ecdf import EmpiricalCDF, estimate_pdf


class TestEmpiricalCDF:
    def test_basic_evaluation(self):
        cdf = EmpiricalCDF([1, 2, 3, 4])
        assert cdf(0) == 0.0
        assert cdf(2) == 0.5
        assert cdf(4) == 1.0
        assert cdf(10) == 1.0

    def test_right_continuity_at_points(self):
        cdf = EmpiricalCDF([1, 1, 2])
        assert cdf(1) == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_summary_stats(self):
        cdf = EmpiricalCDF([1, 5, 9])
        assert cdf.mean == 5.0
        assert cdf.median == 5.0
        assert cdf.max == 9.0
        assert cdf.n == 3

    def test_quantile(self):
        cdf = EmpiricalCDF(list(range(101)))
        assert cdf.quantile(0.25) == pytest.approx(25.0)
        with pytest.raises(ValueError):
            cdf.quantile(2.0)

    def test_series_is_monotone_step(self):
        cdf = EmpiricalCDF([3, 1, 1, 7])
        xs, ys = cdf.series()
        assert list(xs) == [1, 3, 7]
        assert list(ys) == pytest.approx([0.5, 0.75, 1.0])

    def test_vectorized_evaluate(self):
        cdf = EmpiricalCDF([1, 2, 3])
        out = cdf.evaluate([0, 1.5, 5])
        assert list(out) == pytest.approx([0.0, 1 / 3, 1.0])

    def test_sup_distance_self_is_zero(self):
        cdf = EmpiricalCDF([1, 2, 3])
        assert cdf.sup_distance(cdf) == 0.0

    def test_sup_distance_detects_shift(self):
        a = EmpiricalCDF([0] * 100)
        b = EmpiricalCDF([1] * 100)
        assert a.sup_distance(b) == 1.0

    def test_sup_distance_converges_for_same_distribution(self):
        rng = np.random.default_rng(0)
        a = EmpiricalCDF(rng.normal(size=4000))
        b = EmpiricalCDF(rng.normal(size=4000))
        assert a.sup_distance(b) < 0.06


class TestEstimatePdf:
    def test_density_integrates_to_one(self):
        rng = np.random.default_rng(1)
        grid, density = estimate_pdf(rng.normal(size=1000), num_points=200)
        integral = np.trapezoid(density, grid)
        assert integral == pytest.approx(1.0, abs=0.05)

    def test_degenerate_sample(self):
        grid, density = estimate_pdf([5.0, 5.0, 5.0])
        assert density.max() > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate_pdf([])

    def test_peak_near_mode(self):
        rng = np.random.default_rng(2)
        sample = rng.normal(loc=10.0, scale=1.0, size=2000)
        grid, density = estimate_pdf(sample, num_points=300)
        assert abs(grid[np.argmax(density)] - 10.0) < 0.5
