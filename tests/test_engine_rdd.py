"""Tests for RDD transformations and actions."""

import pytest

from repro.engine.context import SparkLiteContext
from repro.util.errors import EngineError


@pytest.fixture(scope="module")
def sc():
    context = SparkLiteContext(parallelism=3)
    yield context
    context.stop()


class TestNarrowTransforms:
    def test_map(self, sc):
        assert sc.parallelize([1, 2, 3]).map(lambda x: x * 2).collect() \
            == [2, 4, 6]

    def test_filter(self, sc):
        assert sc.parallelize(range(10)).filter(
            lambda x: x % 2 == 0).collect() == [0, 2, 4, 6, 8]

    def test_flat_map(self, sc):
        assert sc.parallelize(["ab", "c"]).flat_map(list).collect() \
            == ["a", "b", "c"]

    def test_map_partitions(self, sc):
        result = sc.parallelize(range(10), 2).map_partitions(
            lambda part: [sum(part)]).collect()
        assert sum(result) == 45
        assert len(result) == 2

    def test_key_by_and_map_values(self, sc):
        result = (sc.parallelize(["a", "bb"])
                  .key_by(len).map_values(str.upper).collect())
        assert result == [(1, "A"), (2, "BB")]

    def test_chained_laziness(self, sc):
        calls = []
        rdd = sc.parallelize([1, 2]).map(lambda x: calls.append(x) or x)
        assert calls == []          # nothing ran yet
        rdd.collect()
        assert sorted(calls) == [1, 2]

    def test_union(self, sc):
        combined = sc.parallelize([1, 2]).union(sc.parallelize([3]))
        assert sorted(combined.collect()) == [1, 2, 3]

    def test_sample_fraction_bounds(self, sc):
        with pytest.raises(EngineError):
            sc.parallelize([1]).sample(1.5)

    def test_sample_subset(self, sc):
        data = list(range(200))
        sampled = sc.parallelize(data).sample(0.3, seed=1).collect()
        assert set(sampled) <= set(data)
        assert 20 < len(sampled) < 100


class TestWideTransforms:
    def test_reduce_by_key(self, sc):
        result = (sc.parallelize([("a", 1), ("b", 2), ("a", 3)])
                  .reduce_by_key(lambda x, y: x + y).collect_as_map())
        assert result == {"a": 4, "b": 2}

    def test_group_by_key(self, sc):
        result = dict(sc.parallelize([("a", 1), ("a", 2), ("b", 3)])
                      .group_by_key().collect())
        assert sorted(result["a"]) == [1, 2]
        assert result["b"] == [3]

    def test_aggregate_by_key(self, sc):
        result = (sc.parallelize([("a", 1), ("a", 5), ("b", 2)])
                  .aggregate_by_key(0, lambda acc, v: max(acc, v),
                                    lambda x, y: max(x, y))
                  .collect_as_map())
        assert result == {"a": 5, "b": 2}

    def test_distinct(self, sc):
        assert sorted(sc.parallelize([3, 1, 3, 2, 1]).distinct().collect()) \
            == [1, 2, 3]

    def test_join(self, sc):
        left = sc.parallelize([(1, "a"), (2, "b")])
        right = sc.parallelize([(1, "x"), (1, "y"), (3, "z")])
        joined = sorted(left.join(right).collect())
        assert joined == [(1, ("a", "x")), (1, ("a", "y"))]

    def test_left_outer_join(self, sc):
        left = sc.parallelize([(1, "a"), (2, "b")])
        right = sc.parallelize([(1, "x")])
        joined = dict(left.left_outer_join(right).collect())
        assert joined[1] == ("a", "x")
        assert joined[2] == ("b", None)

    def test_cogroup(self, sc):
        left = sc.parallelize([(1, "a")])
        right = sc.parallelize([(1, "x"), (1, "y")])
        result = dict(left.cogroup(right).collect())
        lefts, rights = result[1]
        assert lefts == ["a"]
        assert sorted(rights) == ["x", "y"]

    def test_sort_by(self, sc):
        assert sc.parallelize([3, 1, 2]).sort_by(lambda x: x).collect() \
            == [1, 2, 3]
        assert sc.parallelize([3, 1, 2]).sort_by(
            lambda x: x, ascending=False).collect() == [3, 2, 1]

    def test_repartition_preserves_data(self, sc):
        rdd = sc.parallelize(range(20), 2).repartition(5)
        assert rdd.num_partitions == 5
        assert sorted(rdd.collect()) == list(range(20))


class TestActions:
    def test_count(self, sc):
        assert sc.parallelize(range(7)).count() == 7

    def test_take_and_first(self, sc):
        assert sc.parallelize([5, 6, 7]).take(2) == [5, 6]
        assert sc.parallelize([5]).first() == 5

    def test_first_empty_raises(self, sc):
        with pytest.raises(EngineError):
            sc.parallelize([]).first()

    def test_reduce(self, sc):
        assert sc.parallelize([1, 2, 3, 4]).reduce(lambda a, b: a + b) == 10

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(EngineError):
            sc.parallelize([]).reduce(lambda a, b: a + b)

    def test_sum_mean(self, sc):
        assert sc.parallelize([1, 2, 3]).sum() == 6
        assert sc.parallelize([1, 2, 3]).mean() == 2.0

    def test_top(self, sc):
        assert sc.parallelize([5, 9, 1, 7]).top(2) == [9, 7]

    def test_count_by_value(self, sc):
        assert sc.parallelize(["a", "b", "a"]).count_by_value() \
            == {"a": 2, "b": 1}

    def test_count_by_key(self, sc):
        assert sc.parallelize([("a", 1), ("a", 2), ("b", 1)]).count_by_key() \
            == {"a": 2, "b": 1}


class TestCaching:
    def test_cache_avoids_recompute_across_jobs(self, sc):
        calls = []
        rdd = sc.parallelize([1, 2, 3], 1).map(
            lambda x: calls.append(x) or x).cache()
        rdd.collect()
        rdd.collect()
        assert len(calls) == 3  # second job reused the cache

    def test_unpersist_recomputes(self, sc):
        calls = []
        rdd = sc.parallelize([1], 1).map(
            lambda x: calls.append(x) or x).cache()
        rdd.collect()
        rdd.unpersist()
        rdd.collect()
        assert len(calls) == 2


class TestDatasetInput:
    def test_one_partition_per_part_file(self, sc):
        from repro.dfs import MiniDfs, write_json_dataset
        dfs = MiniDfs(num_datanodes=2)
        write_json_dataset(dfs, "/d", [{"x": i} for i in range(12)],
                           partitions=4)
        rdd = sc.json_dataset(dfs, "/d")
        assert rdd.num_partitions == 4
        assert sorted(r["x"] for r in rdd.collect()) == list(range(12))

    def test_missing_dataset_raises(self, sc):
        from repro.dfs import MiniDfs
        with pytest.raises(EngineError):
            sc.json_dataset(MiniDfs(), "/nope")
