"""Tests for the BFS frontier crawler against the tiny world."""

import pytest

from repro.crawl.client import ApiClient
from repro.crawl.frontier import BfsCrawler
from repro.crawl.tokens import TokenPool
from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import read_json_dataset
from repro.sources.angellist import AngelListServer
from repro.util.clock import SimClock


@pytest.fixture(scope="module")
def crawl(tiny_world):
    clock = SimClock()
    server = AngelListServer(tiny_world, clock=clock)
    tokens = [server.issue_token(f"t{i}") for i in range(6)]
    client = ApiClient(server, clock, token_pool=TokenPool(tokens, clock))
    dfs = MiniDfs()
    result = BfsCrawler(client, dfs).run()
    return result, dfs, tiny_world


class TestCoverage:
    def test_all_startups_found(self, crawl):
        result, _dfs, world = crawl
        assert result.startups == len(world.companies)

    def test_all_users_found(self, crawl):
        result, _dfs, world = crawl
        assert result.users == len(world.users)

    def test_no_duplicate_startups(self, crawl):
        _result, dfs, _world = crawl
        records = read_json_dataset(dfs, "/crawl/angellist/startups")
        ids = [r["id"] for r in records]
        assert len(ids) == len(set(ids))

    def test_investment_edges_match_world(self, crawl):
        result, dfs, world = crawl
        expected = {(inv.investor_id, inv.company_id)
                    for inv in world.investments}
        records = read_json_dataset(dfs, "/crawl/angellist/investments")
        crawled = {(r["investor_id"], r["company_id"]) for r in records}
        assert crawled == expected

    def test_follow_edges_counted(self, crawl):
        result, _dfs, world = crawl
        expected = sum(len(u.follows_companies) + len(u.follows_users)
                       for u in world.users.values())
        assert result.follow_edges == expected


class TestRounds:
    def test_round_zero_is_raising_startups(self, crawl):
        result, _dfs, world = crawl
        raising = sum(1 for c in world.companies.values()
                      if c.currently_raising)
        assert result.rounds[0].new_startups == raising

    def test_discovery_eventually_stops(self, crawl):
        result, _dfs, _world = crawl
        assert result.rounds[-1].total == 0 or len(result.rounds) >= 2

    def test_multiple_rounds_needed(self, crawl):
        result, _dfs, _world = crawl
        assert len(result.rounds) >= 3  # BFS, not a directory listing


class TestBudgets:
    def test_max_rounds_cuts_crawl(self, tiny_world):
        clock = SimClock()
        server = AngelListServer(tiny_world, clock=clock)
        client = ApiClient(server, clock, token=server.issue_token("t"))
        limited = BfsCrawler(client, MiniDfs(), max_rounds=1).run()
        assert limited.startups < len(tiny_world.companies)

    def test_max_entities_cuts_crawl(self, tiny_world):
        clock = SimClock()
        server = AngelListServer(tiny_world, clock=clock)
        client = ApiClient(server, clock, token=server.issue_token("t"))
        limited = BfsCrawler(client, MiniDfs(), max_entities=200).run()
        assert limited.startups + limited.users <= 500  # soft cap + frontier


class TestRateLimitInteraction:
    def test_crawl_spans_rate_limit_windows(self, crawl):
        result, _dfs, _world = crawl
        # 6 tokens × 1000/hr cannot absorb the whole crawl in one window,
        # so simulated time must have advanced past at least one reset.
        if result.client_stats.requests > 6000:
            assert result.sim_duration >= 3600.0

    def test_stats_consistent(self, crawl):
        result, _dfs, _world = crawl
        stats = result.client_stats
        assert stats.successes <= stats.requests
        assert stats.requests == (stats.successes + stats.throttled
                                  + stats.retries + stats.not_found
                                  + stats.failures + stats.auth_refreshes)
