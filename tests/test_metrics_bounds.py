"""Tests for DKW / Glivenko–Cantelli bounds."""

import pytest

from repro.metrics.bounds import dkw_epsilon, dkw_sample_size


class TestDkwEpsilon:
    def test_known_value(self):
        # n=800000, 99%: sqrt(ln(200)/(1.6e6)) ≈ 0.00182
        assert dkw_epsilon(800_000, 0.99) == pytest.approx(0.00182, abs=2e-4)

    def test_paper_claim_is_conservative(self):
        """The paper's ε=0.0196 at n=800k/99% is looser than DKW needs."""
        assert dkw_epsilon(800_000, 0.99) < 0.0196

    def test_shrinks_with_n(self):
        assert dkw_epsilon(10_000) < dkw_epsilon(100)

    def test_grows_with_confidence(self):
        assert dkw_epsilon(1000, 0.999) > dkw_epsilon(1000, 0.9)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            dkw_epsilon(0)
        with pytest.raises(ValueError):
            dkw_epsilon(10, 1.0)


class TestDkwSampleSize:
    def test_roundtrip(self):
        n = dkw_sample_size(0.01, 0.99)
        assert dkw_epsilon(n, 0.99) <= 0.01
        assert dkw_epsilon(n - 1, 0.99) > 0.01

    def test_paper_epsilon_needs_far_fewer_pairs(self):
        assert dkw_sample_size(0.0196, 0.99) < 10_000

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            dkw_sample_size(0.0)
