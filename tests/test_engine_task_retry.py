"""Tests for Spark-style task re-execution and crashed-worker recovery."""

import multiprocessing
import os
import threading

import pytest

from repro.engine.backends import (ProcessBackend, SerialBackend,
                                   ThreadBackend)
from repro.engine.context import SparkLiteContext
from repro.util.errors import EngineError

# module-level flaky-op registry: picklable functions, per-run state
_LOCK = threading.Lock()
_FAILED = set()


@pytest.fixture(autouse=True)
def _reset_flaky_registry():
    with _LOCK:
        _FAILED.clear()
    yield


def _fail_once(x):
    """Raises the first time it sees each input, then succeeds."""
    with _LOCK:
        if x not in _FAILED:
            _FAILED.add(x)
            raise RuntimeError(f"transient failure on {x!r}")
    return x * 10


def _fail_first_element_once(x):
    """Fails each partition's first element (even values) exactly once."""
    with _LOCK:
        if x % 2 == 0 and x not in _FAILED:
            _FAILED.add(x)
            raise RuntimeError(f"transient failure on {x!r}")
    return x * 10


def _fail_partition_head_once(x):
    """Fails once on each 5-element partition's head (multiples of 5)."""
    with _LOCK:
        if x % 5 == 0 and x not in _FAILED:
            _FAILED.add(x)
            raise RuntimeError(f"transient failure on {x!r}")
    return x * 10


def _die_in_worker(x):
    """Kills the hosting process unless it is the driver."""
    if multiprocessing.current_process().name != "MainProcess":
        os._exit(1)
    return x + 1


class TestAttemptBudget:
    @pytest.mark.parametrize("backend_cls", [SerialBackend, ThreadBackend])
    def test_flaky_task_retried_to_success(self, backend_cls):
        backend = backend_cls()
        backend.configure(parallelism=2, task_retries=1)
        run = backend.run(_fail_once, [1, 2, 3])
        assert run.results == [10, 20, 30]
        assert run.retried == 3
        assert run.attempts == 6          # every task needed two attempts
        backend.close()

    def test_zero_budget_propagates_the_error(self):
        backend = SerialBackend()
        backend.configure(parallelism=1, task_retries=0)
        with pytest.raises(RuntimeError):
            backend.run(_fail_once, [1])

    def test_budget_exhaustion_raises_original_error(self):
        def always_fails(x):
            raise ValueError("permanent")
        backend = SerialBackend()
        backend.configure(parallelism=1, task_retries=3)
        with pytest.raises(ValueError, match="permanent"):
            backend.run(always_fails, [1])

    def test_healthy_tasks_cost_one_attempt_each(self):
        backend = ThreadBackend()
        backend.configure(parallelism=2, task_retries=5)
        run = backend.run(lambda x: x, [1, 2, 3, 4])
        assert run.attempts == 4 and run.retried == 0
        backend.close()


class TestContextMetrics:
    def test_negative_task_retries_rejected(self):
        with pytest.raises(EngineError):
            SparkLiteContext(parallelism=1, task_retries=-1)

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_retries_surface_in_job_metrics(self, backend):
        with SparkLiteContext(parallelism=2, backend=backend,
                              task_retries=1) as sc:
            out = (sc.parallelize(range(4), 2)
                   .map(_fail_first_element_once).collect())
            assert out == [0, 10, 20, 30]
            metrics = sc.last_job_metrics
            assert metrics.retried_tasks == 2      # one retry per partition
            assert metrics.task_attempts >= 4
            map_stage = next(s for s in metrics.stages if s.name == "map")
            assert map_stage.retried == 2
            assert map_stage.attempts == 4

    def test_clean_job_reports_no_retries(self):
        with SparkLiteContext(parallelism=2, backend="serial",
                              task_retries=2) as sc:
            sc.parallelize(range(8), 4).map(lambda x: x + 1).collect()
            assert sc.last_job_metrics.retried_tasks == 0

    def test_differential_with_serial_oracle(self):
        with SparkLiteContext(parallelism=2, backend="serial",
                              task_retries=1) as oracle:
            expected = (oracle.parallelize(range(20), 4)
                        .map(lambda x: (x % 3, x))
                        .reduce_by_key(lambda a, b: a + b).collect())
        with _LOCK:
            _FAILED.clear()
        with SparkLiteContext(parallelism=2, backend="thread",
                              task_retries=1) as sc:
            got = (sc.parallelize(range(20), 4)
                   .map(_fail_partition_head_once)
                   .map(lambda x: x // 10)
                   .map(lambda x: (x % 3, x))
                   .reduce_by_key(lambda a, b: a + b).collect())
        assert sorted(got) == sorted(expected)


class TestProcessPoolRecovery:
    def test_broken_pool_is_rebuilt_and_batch_finishes(self):
        backend = ProcessBackend(parallelism=2, task_retries=1)
        try:
            run = backend.run(_die_in_worker, [1, 2, 3, 4])
            # every worker died; the batch still completed (in-driver
            # after pool recovery was exhausted) and nothing was lost
            assert run.results == [2, 3, 4, 5]
            assert backend.pool_rebuilds >= 1
            assert run.fell_back
            assert run.attempts > 4
            assert run.retried == 4
        finally:
            backend.close()

    def test_healthy_pool_survives_for_later_batches(self):
        backend = ProcessBackend(parallelism=2, task_retries=1)
        try:
            crashed = backend.run(_die_in_worker, [1, 2, 3, 4])
            assert crashed.results == [2, 3, 4, 5]
            healthy = backend.run(_noop_double, [1, 2, 3, 4])
            assert healthy.results == [2, 4, 6, 8]
            assert not healthy.retried
        finally:
            backend.close()


def _noop_double(x):
    return x * 2
