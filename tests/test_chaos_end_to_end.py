"""Deterministic chaos harness over the full pipeline (the PR-2 capstone).

One world is crawled clean, then re-crawled under a composed
:class:`FaultSchedule` injecting every fault kind — timeouts, resets,
brownout windows, corrupt payloads, rate storms, plain 5xxs — at an
aggregate rate above 5%. For every seed in the matrix the chaotic run
must converge to *bit-identical* datasets and analyses: the resilience
layer (retries, jitter, breakers, dead-letter replay, task re-execution,
checksummed storage) is only correct if chaos is invisible in the
output.

Seeds come from ``CHAOS_SEEDS`` (space/comma separated) when set, so CI
can shard the matrix one seed per job.
"""

import os
import threading

import pytest

from repro.core.platform import ExploratoryPlatform, PlatformConfig
from repro.dfs.jsonlines import read_json_dataset
from repro.net.faults import FaultSchedule
from repro.world.config import WorldConfig
from repro.world.generator import generate_world

pytestmark = pytest.mark.chaos

DATASETS = (
    "/crawl/angellist/startups",
    "/crawl/angellist/users",
    "/crawl/angellist/follow_edges",
    "/crawl/angellist/investments",
    "/crawl/crunchbase/organizations",
    "/crawl/facebook/pages",
    "/crawl/twitter/profiles",
)


def _seeds():
    env = os.environ.get("CHAOS_SEEDS", "").replace(",", " ").split()
    return [int(s) for s in env] if env else [7, 21, 42]


def _sorted_records(dfs, directory):
    return sorted(read_json_dataset(dfs, directory),
                  key=lambda r: repr(sorted(r.items())))


@pytest.fixture(scope="module")
def chaos_world():
    return generate_world(WorldConfig(scale=0.002, seed=77))


@pytest.fixture(scope="module")
def clean_platform(chaos_world):
    platform = ExploratoryPlatform(chaos_world)
    platform.run_full_crawl()
    yield platform
    platform.close()


@pytest.fixture(scope="module", params=_seeds(), ids=lambda s: f"seed{s}")
def chaos_platform(request, chaos_world):
    platform = ExploratoryPlatform(chaos_world, config=PlatformConfig(
        faults=FaultSchedule.chaos(seed=request.param),
        client_max_retries=10,       # outlast a full brownout window
        client_backoff_jitter=0.25,
        task_retries=2))
    platform.run_full_crawl()
    yield platform
    platform.close()


class TestScheduleContract:
    """The harness must actually be injecting meaningful chaos."""

    def test_schedule_composes_enough_fault_kinds(self, chaos_platform):
        schedule = chaos_platform.config.faults
        assert len(schedule.kinds) >= 5
        assert schedule.aggregate_rate >= 0.05

    def test_faults_actually_fired(self, chaos_platform):
        summary = chaos_platform.crawl_summary
        stats = summary.angellist.client_stats
        for source in (summary.crunchbase, summary.facebook,
                       summary.twitter):
            stats = stats.merge(source.client_stats)
        assert stats.retries > 0
        # distinct fault kinds leave distinct fingerprints; a chaos run
        # over thousands of requests must show several of them
        fingerprints = [stats.timeouts, stats.resets,
                        stats.corrupt_payloads, stats.retry_after_waits,
                        stats.throttled]
        assert sum(1 for f in fingerprints if f > 0) >= 3, fingerprints


class TestNothingLost:
    def test_pipeline_completes_with_zero_hard_failures(self, chaos_platform):
        summary = chaos_platform.crawl_summary
        # the BFS client has no dead-letter queue: every failure there
        # would have killed the crawl
        assert summary.angellist.client_stats.failures == 0
        assert summary.angellist.startups > 0

    def test_dead_letter_queues_drain_to_empty(self, chaos_platform):
        for name, queue in chaos_platform.dead_letter_queues.items():
            assert len(queue) == 0, f"{name} still has parked letters"
        summary = chaos_platform.crawl_summary
        for result in (summary.facebook, summary.twitter):
            assert result.replayed == result.dead_lettered

    def test_datasets_bit_identical_to_clean_run(self, clean_platform,
                                                 chaos_platform):
        for directory in DATASETS:
            assert _sorted_records(chaos_platform.dfs, directory) \
                == _sorted_records(clean_platform.dfs, directory), directory

    def test_analyses_agree_with_clean_run(self, clean_platform,
                                           chaos_platform):
        clean_table = clean_platform.run_plugin("engagement_table")
        chaos_table = chaos_platform.run_plugin("engagement_table")
        assert chaos_table.rows == clean_table.rows
        clean_report = clean_platform.run_plugin("concentration")
        chaos_report = chaos_platform.run_plugin("concentration")
        assert chaos_report.render() == clean_report.render()


# ---- engine chaos: a flaky partition op retried to success ----------------
_LOCK = threading.Lock()
_FAILED = set()


def _flaky_square(item):
    key, x = item
    with _LOCK:
        if key not in _FAILED:
            _FAILED.add(key)
            raise RuntimeError(f"transient task failure on {key}")
    return x * x


class TestEngineRetriesUnderChaos:
    def test_job_metrics_report_retried_tasks(self, chaos_platform):
        sc = chaos_platform.sc
        data = [(f"p{i}", i) for i in range(8)]
        with _LOCK:
            _FAILED.clear()
        # fail each partition's head element once; task_retries=2 from
        # the chaos config re-executes every partition to success
        out = (sc.parallelize(data, 4)
               .map(_flaky_square)
               .collect())
        assert sorted(out) == sorted(x * x for _k, x in data)
        metrics = sc.last_job_metrics
        assert metrics.retried_tasks >= 1
        assert metrics.task_attempts > 4


# ---- engine chaos: kill-worker-mid-stage on every backend ------------------
def _bucket_pair(x):
    return (x % 7, x * 3 + 1)


def _sum_two(a, b):
    return a + b


def _engine_pipeline(sc):
    """A representative multi-stage job: narrow → shuffle → narrow."""
    return (sc.parallelize(range(200), 8)
            .map(_bucket_pair)
            .reduce_by_key(_sum_two)
            .map_values(_double_value)
            .collect())


def _double_value(v):
    return v * 2


class TestKillWorkerMidStage:
    """The supervisor's capstone: the ``chaos-engine`` profile kills
    workers and wedges tasks mid-stage on every backend, and the output
    must stay byte-identical to a fault-free serial run."""

    @pytest.fixture(scope="class")
    def oracle(self):
        from repro.engine.context import SparkLiteContext
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            yield _engine_pipeline(sc)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("seed", _seeds(), ids=lambda s: f"seed{s}")
    def test_outputs_byte_identical_under_engine_faults(self, oracle,
                                                        backend, seed):
        from repro.engine.context import SparkLiteContext
        faults = FaultSchedule.engine_chaos(intensity=8.0, seed=seed)
        with SparkLiteContext(parallelism=4, backend=backend,
                              task_deadline=5.0,
                              engine_faults=faults) as sc:
            got = _engine_pipeline(sc)
            supervised = [m for m in sc.metrics_trace.jobs()]
            touched = sum(m.lost_executors + m.zombie_tasks
                          + m.recomputed_partitions for m in supervised)
        assert got == oracle
        # the profile must actually have fired at this intensity
        assert touched >= 1, "engine chaos injected nothing"

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("seed", _seeds(), ids=lambda s: f"seed{s}")
    def test_columnar_shm_byte_identical_under_engine_faults(
            self, oracle, backend, seed):
        """The same chaos, on the columnar engine with the exchange
        forced through shared memory: killed workers and wedged tasks
        recompute through the shm blocks (a block may be decoded by a
        retried and a speculative attempt), the output stays
        byte-identical, and the job-end sweep reclaims every segment —
        including orphans from attempts that died after sealing."""
        from repro.engine.columnar import (SHM_BASE_PREFIX, list_segments,
                                           shm_available)
        from repro.engine.context import SparkLiteContext
        faults = FaultSchedule.engine_chaos(intensity=8.0, seed=seed)
        with SparkLiteContext(parallelism=4, backend=backend,
                              task_deadline=5.0, engine_faults=faults,
                              engine_columnar=True, batch_rows=32,
                              shuffle_shm=shm_available() or None) as sc:
            got = _engine_pipeline(sc)
            touched = sum(m.lost_executors + m.zombie_tasks
                          + m.recomputed_partitions
                          for m in sc.metrics_trace.jobs())
        assert got == oracle
        assert touched >= 1, "engine chaos injected nothing"
        assert list_segments(SHM_BASE_PREFIX) == []

    def test_chaos_engine_profile_parses(self):
        schedule = FaultSchedule.from_profile("chaos-engine", seed=3)
        assert "kill_worker" in schedule.kinds
        assert "hang_task" in schedule.kinds
        assert len(schedule.engine_specs) == 2
        # the network side of the profile is intact too
        assert schedule.aggregate_rate >= 0.05
