"""Tests for BigCLAM, bipartite SBM, label propagation, random control."""

import numpy as np
import pytest

from repro.community.bigclam import BigClam
from repro.community.labelprop import label_propagation
from repro.community.random_baseline import random_communities
from repro.community.sbm import BipartiteSBM
from repro.community.scoring import best_match_f1, cover_f1
from repro.graph.bipartite import BipartiteGraph
from repro.util.rng import RngStream

from tests.test_community_coda import _two_block_graph


class TestBigClam:
    def test_recovers_blocks_via_projection(self):
        graph, truth = _two_block_graph()
        result = BigClam(num_communities=2, seed=1).fit(graph)
        detected = [frozenset(m) for m in result.communities.values()]
        assert detected, "no communities found"
        score = cover_f1(detected, [set(t) for t in truth])
        assert score > 0.6

    def test_empty_projection(self):
        graph = BipartiteGraph([(1, 100), (2, 200)])  # no co-investment
        result = BigClam(num_communities=2, seed=1).fit(graph)
        assert result.communities == {}

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BigClam(num_communities=0)


class TestBipartiteSBM:
    def test_recovers_blocks(self):
        graph, truth = _two_block_graph(noise_edges=5)
        result = BipartiteSBM(num_groups=2, seed=3).fit(graph)
        detected = list(result.investor_communities().values())
        score = cover_f1(detected, [set(t) for t in truth])
        assert score > 0.8

    def test_assignment_is_partition(self):
        graph, _ = _two_block_graph()
        result = BipartiteSBM(num_groups=3, seed=1).fit(graph)
        communities = result.investor_communities()
        total = sum(len(m) for m in communities.values())
        assert total == graph.num_investors

    def test_rates_shape(self):
        graph, _ = _two_block_graph()
        result = BipartiteSBM(num_groups=2, seed=1).fit(graph)
        assert result.rates.shape == (2, 2)
        assert (result.rates > 0).all()

    def test_likelihood_finite(self):
        graph, _ = _two_block_graph()
        result = BipartiteSBM(num_groups=2, seed=1).fit(graph)
        assert np.isfinite(result.log_likelihood)

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            BipartiteSBM(num_groups=0)


class TestLabelPropagation:
    def test_separates_disconnected_blocks(self):
        graph, truth = _two_block_graph(noise_edges=0)
        communities = label_propagation(graph, seed=1)
        detected = list(communities.values())
        score = cover_f1(detected, [set(t) for t in truth])
        assert score > 0.8

    def test_min_size_respected(self):
        graph, _ = _two_block_graph()
        communities = label_propagation(graph, seed=1,
                                        min_community_size=3)
        assert all(len(m) >= 3 for m in communities.values())


class TestRandomBaseline:
    def test_sizes_respected(self):
        rng = RngStream(4)
        communities = random_communities(list(range(100)), [10, 5, 3], rng)
        assert [len(communities[i]) for i in range(3)] == [10, 5, 3]

    def test_members_from_pool(self):
        rng = RngStream(4)
        communities = random_communities(list(range(50)), [20], rng)
        assert communities[0] <= set(range(50))

    def test_size_capped_at_pool(self):
        rng = RngStream(4)
        communities = random_communities([1, 2, 3], [10], rng)
        assert len(communities[0]) == 3

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            random_communities([1], [-1], RngStream(1))

    def test_randomized_communities_are_weaker(self, investor_graph):
        """The §5.3 control: random groups share far fewer investments."""
        from repro.metrics.shared import shared_investor_percentage
        portfolios = investor_graph.portfolios()
        filtered = investor_graph.filter_investors(4)
        if filtered.num_investors < 20:
            pytest.skip("tiny world too small")
        strong_members = sorted(
            filtered.investors,
            key=lambda u: -len(portfolios[u]))[:12]
        planted_pct = shared_investor_percentage(strong_members, portfolios)
        rng = RngStream(9)
        random_pcts = []
        for child in rng.children("rand", 10):
            members = sorted(random_communities(
                filtered.investors, [12], child)[0])
            random_pcts.append(
                shared_investor_percentage(members, portfolios))
        assert planted_pct >= np.mean(random_pcts)


class TestScoring:
    def test_perfect_match(self):
        cover = [{1, 2, 3}, {4, 5}]
        assert cover_f1(cover, cover) == 1.0

    def test_no_overlap(self):
        assert cover_f1([{1, 2}], [{3, 4}]) == 0.0

    def test_empty_detected(self):
        assert best_match_f1([], [{1}]) == 0.0

    def test_partial_overlap_between_zero_and_one(self):
        score = cover_f1([{1, 2, 3, 4}], [{3, 4, 5, 6}])
        assert 0.0 < score < 1.0

    def test_asymmetry_of_best_match(self):
        detected = [{1, 2}, {1, 2}, {1, 2}]
        truth = [{1, 2}, {9, 10}]
        assert best_match_f1(detected, truth) == 1.0
        assert best_match_f1(truth, detected) == 0.5
