"""Client resilience (Retry-After, jitter) and crash-consistent crawls."""

import pytest

from repro.crawl.client import ApiClient
from repro.crawl.frontier import BfsCrawler
from repro.crawl.tokens import TokenPool
from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import read_json_dataset
from repro.net.http import Response, SimServer
from repro.sources.angellist import AngelListServer
from repro.util.clock import SimClock
from repro.util.rng import derive_seed


class _BrownoutServer(SimServer):
    """503s with an explicit Retry-After, then recovers."""

    name = "brownout"

    def __init__(self, clock, fails=2, retry_after=7.0):
        super().__init__(clock=clock)
        self.fails = fails
        self.retry_after = retry_after
        self.route("GET", "/x", self._handler)

    def _handler(self, request):
        if self.fails > 0:
            self.fails -= 1
            return Response.error(503, "maintenance",
                                  retry_after=self.retry_after)
        return Response.json({"ok": True})


class TestRetryAfterOn503:
    def test_honored_and_counted(self):
        clock = SimClock()
        client = ApiClient(_BrownoutServer(clock, fails=2), clock,
                           token="t", backoff_base=1.0)
        assert client.get("/x") == {"ok": True}
        assert client.stats.retry_after_waits == 2
        assert client.stats.retries == 2
        # the server's estimate is used verbatim — no backoff guessing
        assert client.stats.slept_seconds == pytest.approx(14.0)

    def test_backoff_still_used_without_header(self):
        class _Plain(SimServer):
            name = "plain"

            def __init__(self, clock):
                super().__init__(clock=clock)
                self.fails = 2
                self.route("GET", "/x", self._handler)

            def _handler(self, request):
                if self.fails > 0:
                    self.fails -= 1
                    return Response.error(503, "err")
                return Response.json({"ok": True})

        clock = SimClock()
        client = ApiClient(_Plain(clock), clock, token="t", backoff_base=1.0)
        client.get("/x")
        assert client.stats.retry_after_waits == 0
        assert client.stats.slept_seconds == pytest.approx(3.0)  # 1 + 2


class _FlakyServer(SimServer):
    name = "flaky"

    def __init__(self, clock, fails):
        super().__init__(clock=clock)
        self.fails = fails
        self.route("GET", "/flaky", self._handler)

    def _handler(self, request):
        if self.fails > 0:
            self.fails -= 1
            return Response.error(500, "boom")
        return Response.json({"ok": True})


class TestDeterministicJitter:
    def _slept(self, seed):
        clock = SimClock()
        client = ApiClient(_FlakyServer(clock, fails=3), clock, token="t",
                           backoff_base=1.0, backoff_jitter=0.5,
                           jitter_seed=seed)
        client.get("/flaky")
        return client.stats.slept_seconds

    def test_fixed_seed_reproduces_exact_schedule(self):
        # the jitter fraction is a pure function of
        # (seed, path, retry_index, lifetime request count)
        expected = 0.0
        for retry_index in range(3):
            label = f"/flaky:{retry_index}:{retry_index + 1}"
            fraction = (derive_seed(42, label) % 100_000) / 100_000
            expected += (2 ** retry_index) * (1.0 + 0.5 * fraction)
        assert self._slept(42) == pytest.approx(expected)
        assert self._slept(42) == pytest.approx(self._slept(42))

    def test_distinct_seeds_decorrelate(self):
        schedules = {self._slept(seed) for seed in (1, 2, 3, 4)}
        assert len(schedules) == 4

    def test_zero_jitter_is_pure_exponential(self):
        clock = SimClock()
        client = ApiClient(_FlakyServer(clock, fails=3), clock, token="t",
                           backoff_base=1.0, backoff_jitter=0.0)
        client.get("/flaky")
        assert client.stats.slept_seconds == pytest.approx(7.0)

    def test_jitter_bounds_validated(self):
        clock = SimClock()
        with pytest.raises(Exception):
            ApiClient(_FlakyServer(clock, 0), clock, token="t",
                      backoff_jitter=1.5)


class _DyingClient(ApiClient):
    """Raises (simulating a process crash) after N successful requests."""

    def __init__(self, *args, die_after=0, **kwargs):
        super().__init__(*args, **kwargs)
        self.die_after = die_after
        self._calls = 0

    def request(self, *args, **kwargs):
        self._calls += 1
        if self._calls > self.die_after:
            raise KeyboardInterrupt("simulated crawler crash")
        return super().request(*args, **kwargs)


def _client(world, clock, cls=ApiClient, **kwargs):
    server = AngelListServer(world, clock=clock)
    tokens = [server.issue_token(f"t{i}") for i in range(6)]
    return cls(server, clock, token_pool=TokenPool(tokens, clock), **kwargs)


class TestMidRoundCrashResume:
    def _crash_and_resume(self, tiny_world):
        """Checkpointed round 1, crash mid-round 2, resume to the end."""
        dfs = MiniDfs()
        clock = SimClock()
        # small parts force flushes mid-round, so the crash strands part
        # files written *after* the last durable checkpoint
        BfsCrawler(_client(tiny_world, clock), dfs, checkpoint=True,
                   records_per_part=10, max_rounds=1).run()
        dying = _client(tiny_world, clock, cls=_DyingClient, die_after=40)
        crawler = BfsCrawler(dying, dfs, checkpoint=True,
                             records_per_part=10)
        with pytest.raises(KeyboardInterrupt):
            crawler.run(resume=True)
        assert crawler.has_checkpoint()
        stranded = dfs.glob_parts("/crawl/angellist/users")
        resumed = BfsCrawler(_client(tiny_world, clock), dfs,
                             checkpoint=True,
                             records_per_part=10).run(resume=True)
        return dfs, resumed, stranded

    def test_crash_mid_round_resumes_to_identical_datasets(self, tiny_world):
        reference_dfs = MiniDfs()
        reference = BfsCrawler(_client(tiny_world, SimClock()),
                               reference_dfs, records_per_part=10).run()
        dfs, resumed, _stranded = self._crash_and_resume(tiny_world)
        assert resumed.resumed
        assert resumed.startups == reference.startups
        assert resumed.users == reference.users
        assert resumed.follow_edges == reference.follow_edges
        assert resumed.investment_edges == reference.investment_edges
        for name in ("startups", "users", "follow_edges", "investments"):
            ref = sorted(read_json_dataset(
                reference_dfs, f"/crawl/angellist/{name}"),
                key=lambda r: repr(sorted(r.items())))
            got = sorted(read_json_dataset(
                dfs, f"/crawl/angellist/{name}"),
                key=lambda r: repr(sorted(r.items())))
            assert got == ref, name

    def test_no_duplicate_records_after_crash_resume(self, tiny_world):
        dfs, _resumed, _stranded = self._crash_and_resume(tiny_world)
        for name in ("startups", "users"):
            records = read_json_dataset(dfs, f"/crawl/angellist/{name}")
            ids = [r["id"] for r in records]
            assert len(ids) == len(set(ids)), name

    def test_torn_checkpoint_temp_is_ignored(self, tiny_world):
        dfs = MiniDfs()
        clock = SimClock()
        BfsCrawler(_client(tiny_world, clock), dfs, checkpoint=True,
                   max_rounds=1).run()
        # a crash mid-checkpoint leaves a hidden temp next to state.json
        dfs.create_text("/crawl/angellist/checkpoint/.state.json.tmp-99",
                        '{"torn": tru')
        resumed = BfsCrawler(_client(tiny_world, clock), dfs,
                             checkpoint=True).run(resume=True)
        assert resumed.resumed
        assert resumed.startups == len(tiny_world.companies)


class _ItemServer(SimServer):
    """Always-healthy server for replaying parked enrichment requests."""

    name = "items"

    def __init__(self, clock):
        super().__init__(clock=clock)
        self.route("GET", "/item/:id", lambda r: Response.json(
            {"item": r.path_params["id"]}))


class TestDeadLetterReplayIdempotent:
    """Replaying the same batch twice must not duplicate landed records.

    The queue deletes a letter only *after* ``on_success`` ran, so a
    crash between the write and the delete re-delivers the letter on
    the next pass. Replay therefore keys landed records by
    ``angellist_id`` and acks re-delivered letters without rewriting.
    """

    OUT = "/crawl/test/pages"

    def _letters(self, ids):
        from repro.crawl.deadletter import DeadLetter
        return [DeadLetter("GET", f"/item/{n}",
                           tag={"angellist_id": n}) for n in ids]

    def _replay(self, dfs, clock, queue):
        from repro.crawl.enrich import _replay_into_dataset
        client = ApiClient(_ItemServer(clock), clock, token="t")
        return _replay_into_dataset(client, queue, dfs, self.OUT,
                                    records_per_part=2)

    def test_redelivered_batch_lands_exactly_once(self):
        from repro.crawl.deadletter import DeadLetterQueue
        dfs, clock = MiniDfs(), SimClock()
        queue = DeadLetterQueue(dfs)
        for letter in self._letters([1, 2, 3]):
            queue.append(letter)
        assert self._replay(dfs, clock, queue) == 3
        assert len(queue) == 0
        # crash-before-delete: the identical batch is delivered again
        for letter in self._letters([1, 2, 3]):
            queue.append(letter)
        assert self._replay(dfs, clock, queue) == 0
        assert len(queue) == 0  # re-delivered letters still acked
        records = read_json_dataset(dfs, self.OUT)
        ids = [r["angellist_id"] for r in records]
        assert sorted(ids) == [1, 2, 3]
        assert len(ids) == len(set(ids))

    def test_fresh_letters_still_recovered_alongside_redelivered(self):
        from repro.crawl.deadletter import DeadLetterQueue
        dfs, clock = MiniDfs(), SimClock()
        queue = DeadLetterQueue(dfs)
        for letter in self._letters([1, 2]):
            queue.append(letter)
        assert self._replay(dfs, clock, queue) == 2
        # a mixed second batch: one re-delivered, one genuinely new
        for letter in self._letters([2, 9]):
            queue.append(letter)
        assert self._replay(dfs, clock, queue) == 1
        ids = sorted(r["angellist_id"]
                     for r in read_json_dataset(dfs, self.OUT))
        assert ids == [1, 2, 9]


class _PoisonClient:
    """Every replayed request fails — the letter can never succeed."""

    def request(self, method, path, params, _replaying=True):
        from repro.util.errors import CrawlError
        raise CrawlError(f"permanently broken: {path}")


class TestDeadLetterQuarantine:
    """Poison letters stop looping after ``max_attempts`` replays."""

    def _queue(self, dfs, max_attempts=3):
        from repro.crawl.deadletter import DeadLetterQueue
        return DeadLetterQueue(dfs, root="/dlq", max_attempts=max_attempts)

    def test_poison_letter_moves_to_quarantine(self):
        from repro.crawl.deadletter import DeadLetter
        dfs = MiniDfs()
        queue = self._queue(dfs, max_attempts=3)
        queue.append(DeadLetter("GET", "/broken", attempts=4))
        for expected_pending in (1, 1, 0):
            report = queue.replay(_PoisonClient())
            assert len(queue) == expected_pending
        assert report.quarantined == 1
        assert report.requeued == 0 and report.drained
        paths = queue.quarantined()
        assert len(paths) == 1
        letter = queue.load(paths[0])
        assert letter.replays == 3
        assert "permanently broken" in letter.error
        # the original attempts counter (client retries) is preserved
        # evidence, not what the cap keys on
        assert letter.attempts == 4 + 3

    def test_quarantined_letters_never_replayed_again(self):
        from repro.crawl.deadletter import DeadLetter
        dfs = MiniDfs()
        queue = self._queue(dfs, max_attempts=1)
        queue.append(DeadLetter("GET", "/broken"))
        assert queue.replay(_PoisonClient()).quarantined == 1

        class Counting:
            calls = 0

            def request(self, method, path, params, _replaying=True):
                Counting.calls += 1
                return {}

        report = queue.replay(Counting())
        assert Counting.calls == 0
        assert report.replayed == 0

    def test_replay_counter_survives_restart(self):
        from repro.crawl.deadletter import DeadLetter
        dfs = MiniDfs()
        queue = self._queue(dfs, max_attempts=3)
        queue.append(DeadLetter("GET", "/broken"))
        queue.replay(_PoisonClient())
        # a new queue instance over the same DFS sees the bumped counter
        reopened = self._queue(dfs, max_attempts=3)
        assert reopened.load(reopened.pending()[0]).replays == 1
        reopened.replay(_PoisonClient())
        assert reopened.replay(_PoisonClient()).quarantined == 1

    def test_sequence_numbers_never_collide_with_quarantine(self):
        from repro.crawl.deadletter import DeadLetter
        dfs = MiniDfs()
        queue = self._queue(dfs, max_attempts=1)
        queue.append(DeadLetter("GET", "/a"))
        queue.replay(_PoisonClient())  # letter-000000 now quarantined
        reopened = self._queue(dfs, max_attempts=1)
        path = reopened.append(DeadLetter("GET", "/b"))
        assert path.endswith("letter-000001.json")
        # healthy letters still replay fine alongside the quarantined one
        class Ok:
            def request(self, method, path, params, _replaying=True):
                return {}

        assert reopened.replay(Ok()).replayed == 1
