"""Durable standing-query registry: lifecycle, replay, determinism."""

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.serve.subscriptions import (KIND_COMMUNITY_INVESTOR,
                                       KIND_COMPANY_FUNDING,
                                       KIND_NEIGHBORHOOD_FOLLOW,
                                       STATE_ACTIVE, STATE_CANCELLED,
                                       STATE_PAUSED, SubscriptionRegistry)
from repro.util.errors import ConfigError


@pytest.fixture()
def dfs():
    return MiniDfs(num_datanodes=3)


@pytest.fixture()
def registry(dfs):
    return SubscriptionRegistry(dfs).open()


class TestRegister:
    def test_ids_are_sequential_and_deterministic(self, registry):
        a = registry.register("t0", KIND_COMPANY_FUNDING, 7)
        b = registry.register("t1", KIND_COMMUNITY_INVESTOR, 3)
        assert (a.sub_id, b.sub_id) == ("sub-000001", "sub-000002")
        assert a.state == STATE_ACTIVE
        assert a.subscriber_id == "t0:default"

    def test_explicit_subscriber_id(self, registry):
        sub = registry.register("t0", KIND_NEIGHBORHOOD_FOLLOW, 5,
                                subscriber_id="t0:pager")
        assert sub.subscriber_id == "t0:pager"

    def test_invalid_kind_and_tenant_rejected(self, registry):
        with pytest.raises(ConfigError):
            registry.register("t0", "psychic_premonition", 1)
        with pytest.raises(ConfigError):
            registry.register("", KIND_COMPANY_FUNDING, 1)

    def test_must_be_opened_first(self, dfs):
        closed = SubscriptionRegistry(dfs)
        with pytest.raises(ConfigError):
            closed.register("t0", KIND_COMPANY_FUNDING, 1)


class TestLifecycle:
    def test_pause_resume_cancel(self, registry):
        sub = registry.register("t0", KIND_COMPANY_FUNDING, 7)
        registry.pause(sub.sub_id)
        assert registry.get(sub.sub_id).state == STATE_PAUSED
        assert registry.active() == []
        registry.resume(sub.sub_id)
        assert registry.get(sub.sub_id).state == STATE_ACTIVE
        registry.cancel(sub.sub_id)
        assert registry.get(sub.sub_id).state == STATE_CANCELLED

    def test_cancelled_is_terminal(self, registry):
        sub = registry.register("t0", KIND_COMPANY_FUNDING, 7)
        registry.cancel(sub.sub_id)
        for op in (registry.pause, registry.resume, registry.cancel):
            with pytest.raises(ConfigError):
                op(sub.sub_id)

    def test_invalid_transitions_rejected(self, registry):
        sub = registry.register("t0", KIND_COMPANY_FUNDING, 7)
        with pytest.raises(ConfigError):
            registry.resume(sub.sub_id)  # not paused
        registry.pause(sub.sub_id)
        with pytest.raises(ConfigError):
            registry.pause(sub.sub_id)  # already paused
        registry.cancel(sub.sub_id)  # cancel from paused is fine

    def test_unknown_sub_rejected(self, registry):
        with pytest.raises(ConfigError):
            registry.pause("sub-999999")

    def test_version_bumps_on_every_event(self, registry):
        v0 = registry.version
        sub = registry.register("t0", KIND_COMPANY_FUNDING, 7)
        registry.pause(sub.sub_id)
        assert registry.version == v0 + 2


class TestReplay:
    """Nothing about a subscription lives only in memory."""

    def test_crash_rebuild_is_byte_identical(self, dfs, registry):
        a = registry.register("t0", KIND_COMPANY_FUNDING, 7)
        b = registry.register("t1", KIND_COMMUNITY_INVESTOR, 3)
        registry.register("t2", KIND_NEIGHBORHOOD_FOLLOW, 9)
        registry.pause(a.sub_id)
        registry.cancel(b.sub_id)
        # the process dies; a fresh registry replays the event log
        rebuilt = SubscriptionRegistry(dfs).open()
        assert [s.as_dict() for s in rebuilt.all()] == \
               [s.as_dict() for s in registry.all()]
        assert rebuilt.version == registry.version
        assert len(rebuilt) == 3

    def test_replay_continues_the_id_sequence(self, dfs, registry):
        registry.register("t0", KIND_COMPANY_FUNDING, 7)
        rebuilt = SubscriptionRegistry(dfs).open()
        nxt = rebuilt.register("t0", KIND_COMPANY_FUNDING, 8)
        assert nxt.sub_id == "sub-000002"

    def test_replayed_state_machine_still_enforced(self, dfs, registry):
        sub = registry.register("t0", KIND_COMPANY_FUNDING, 7)
        registry.cancel(sub.sub_id)
        rebuilt = SubscriptionRegistry(dfs).open()
        with pytest.raises(ConfigError):
            rebuilt.resume(sub.sub_id)

    def test_active_filters_by_state(self, registry):
        a = registry.register("t0", KIND_COMPANY_FUNDING, 1)
        b = registry.register("t0", KIND_COMPANY_FUNDING, 2)
        registry.pause(b.sub_id)
        assert [s.sub_id for s in registry.active()] == [a.sub_id]
        assert [s.sub_id for s in registry.all()] == [a.sub_id, b.sub_id]
