"""Tests for DFS rename/copy/disk-usage."""

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.util.errors import NotFoundError, StorageError


@pytest.fixture()
def dfs():
    store = MiniDfs(num_datanodes=3, block_size=8)
    store.create("/d/a", b"hello")
    store.create("/d/b", b"worldwide")
    return store


class TestRename:
    def test_moves_content(self, dfs):
        dfs.rename("/d/a", "/e/a")
        assert dfs.read("/e/a") == b"hello"
        assert not dfs.exists("/d/a")

    def test_missing_source(self, dfs):
        with pytest.raises(NotFoundError):
            dfs.rename("/ghost", "/x")

    def test_existing_destination(self, dfs):
        with pytest.raises(StorageError):
            dfs.rename("/d/a", "/d/b")

    def test_stat_path_updated(self, dfs):
        dfs.rename("/d/a", "/moved")
        assert dfs.stat("/moved").path == "/moved"


class TestCopy:
    def test_independent_copy(self, dfs):
        dfs.copy("/d/a", "/d/a2")
        assert dfs.read("/d/a2") == b"hello"
        dfs.delete("/d/a")
        assert dfs.read("/d/a2") == b"hello"  # blocks are independent

    def test_copy_to_existing_rejected(self, dfs):
        with pytest.raises(StorageError):
            dfs.copy("/d/a", "/d/b")


class TestDiskUsage:
    def test_sums_directory(self, dfs):
        assert dfs.disk_usage("/d") == len(b"hello") + len(b"worldwide")

    def test_empty_directory(self, dfs):
        assert dfs.disk_usage("/nothing") == 0

    def test_after_rename(self, dfs):
        before = dfs.disk_usage("/d")
        dfs.rename("/d/b", "/elsewhere/b")
        assert dfs.disk_usage("/d") == before - len(b"worldwide")
