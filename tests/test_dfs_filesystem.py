"""Tests for the HDFS-like filesystem simulator."""

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.util.errors import NotFoundError, StorageError


@pytest.fixture()
def dfs():
    return MiniDfs(num_datanodes=4, block_size=16, replication=3, seed=1)


class TestBasics:
    def test_roundtrip(self, dfs):
        dfs.create("/a/b.txt", b"hello world")
        assert dfs.read("/a/b.txt") == b"hello world"

    def test_text_roundtrip(self, dfs):
        dfs.create_text("/t.txt", "héllo")
        assert dfs.read_text("/t.txt") == "héllo"

    def test_empty_file(self, dfs):
        dfs.create("/empty", b"")
        assert dfs.read("/empty") == b""

    def test_relative_path_rejected(self, dfs):
        with pytest.raises(StorageError):
            dfs.create("relative.txt", b"x")

    def test_duplicate_create_rejected(self, dfs):
        dfs.create("/x", b"1")
        with pytest.raises(StorageError):
            dfs.create("/x", b"2")

    def test_missing_file_raises(self, dfs):
        with pytest.raises(NotFoundError):
            dfs.read("/ghost")

    def test_delete(self, dfs):
        dfs.create("/x", b"1")
        dfs.delete("/x")
        assert not dfs.exists("/x")
        with pytest.raises(NotFoundError):
            dfs.delete("/x")

    def test_delete_frees_datanode_blocks(self, dfs):
        dfs.create("/x", b"a" * 100)
        before = sum(n.block_count for n in dfs.datanodes.values())
        dfs.delete("/x")
        assert sum(n.block_count for n in dfs.datanodes.values()) < before


class TestBlocks:
    def test_data_split_into_blocks(self, dfs):
        status = dfs.create("/big", b"a" * 50)  # block_size 16 → 4 blocks
        assert len(status.blocks) == 4
        assert [b.length for b in status.blocks] == [16, 16, 16, 2]

    def test_replication_factor(self, dfs):
        status = dfs.create("/r", b"data")
        assert all(len(b.locations) == 3 for b in status.blocks)
        assert all(len(set(b.locations)) == 3 for b in status.blocks)

    def test_replication_capped_by_datanodes(self):
        dfs = MiniDfs(num_datanodes=2, replication=5)
        status = dfs.create("/r", b"data")
        assert all(len(b.locations) == 2 for b in status.blocks)


class TestNamespace:
    def test_listdir(self, dfs):
        dfs.create("/d/a", b"1")
        dfs.create("/d/b", b"2")
        dfs.create("/e/c", b"3")
        assert dfs.listdir("/d") == ["/d/a", "/d/b"]

    def test_glob_parts(self, dfs):
        dfs.create("/ds/part-00000.jsonl", b"{}")
        dfs.create("/ds/part-00001.jsonl", b"{}")
        dfs.create("/ds/_meta", b"")
        assert dfs.glob_parts("/ds") == ["/ds/part-00000.jsonl",
                                         "/ds/part-00001.jsonl"]

    def test_counters(self, dfs):
        dfs.create("/a", b"xy")
        dfs.create("/b", b"z")
        assert dfs.file_count == 2
        assert dfs.total_bytes == 3


class TestFailures:
    def test_read_survives_one_dead_node(self, dfs):
        dfs.create("/f", b"important" * 10)
        dfs.kill_datanode("dn0")
        assert dfs.read("/f") == b"important" * 10

    def test_read_survives_two_dead_nodes(self, dfs):
        dfs.create("/f", b"important" * 10)
        dfs.kill_datanode("dn0")
        dfs.kill_datanode("dn1")
        assert dfs.read("/f") == b"important" * 10

    def test_read_fails_when_all_replicas_dead(self, dfs):
        dfs.create("/f", b"x" * 100)
        for node_id in ("dn0", "dn1", "dn2", "dn3"):
            dfs.kill_datanode(node_id)
        with pytest.raises(StorageError):
            dfs.read("/f")

    def test_restart_recovers(self, dfs):
        dfs.create("/f", b"x" * 100)
        for node_id in ("dn0", "dn1", "dn2", "dn3"):
            dfs.kill_datanode(node_id)
        dfs.restart_datanode("dn0")
        dfs.restart_datanode("dn1")
        dfs.restart_datanode("dn2")
        assert dfs.read("/f") == b"x" * 100

    def test_rereplication_restores_factor(self, dfs):
        dfs.create("/f", b"y" * 64)
        dfs.kill_datanode("dn0")
        repaired = dfs.rereplicate()
        status = dfs.stat("/f")
        for block in status.blocks:
            live = [nid for nid in block.locations
                    if dfs.datanodes[nid].has(block.block_id)]
            assert len(live) >= 3
        # dn0 held some replicas with 4 nodes @ rf 3; they must be repaired
        assert repaired >= 0

    def test_under_replicated_detection(self, dfs):
        dfs.create("/f", b"y" * 64)
        assert dfs.under_replicated_blocks() == []
        dfs.kill_datanode("dn0")
        flagged = dfs.under_replicated_blocks()
        dfs.rereplicate()
        assert dfs.under_replicated_blocks() == []

    def test_kill_unknown_node(self, dfs):
        with pytest.raises(NotFoundError):
            dfs.kill_datanode("dn99")

    def test_need_at_least_one_datanode(self):
        with pytest.raises(StorageError):
            MiniDfs(num_datanodes=0)


class TestAtomicWriteCrashSemantics:
    """The temp-write + rename(overwrite) protocol under crashes."""

    def test_rename_overwrite_replaces_in_one_step(self, dfs):
        dfs.create("/d/target", b"old")
        dfs.create("/d/.target.tmp-1", b"new")
        dfs.rename("/d/.target.tmp-1", "/d/target", overwrite=True)
        assert dfs.read("/d/target") == b"new"
        assert not dfs.exists("/d/.target.tmp-1")

    def test_rename_without_overwrite_refuses_existing(self, dfs):
        dfs.create("/d/target", b"old")
        dfs.create("/d/src", b"new")
        with pytest.raises(StorageError):
            dfs.rename("/d/src", "/d/target")
        assert dfs.read("/d/target") == b"old"  # untouched on refusal

    def test_dotted_temps_invisible_to_glob_parts(self, dfs):
        dfs.create("/ds/part-00000.jsonl", b"{}")
        dfs.create("/ds/.part-00001.jsonl.tmp-3", b"torn")
        assert dfs.glob_parts("/ds") == ["/ds/part-00000.jsonl"]

    def test_crash_before_rename_keeps_previous_version(self, dfs,
                                                        monkeypatch):
        dfs.write_atomic_text("/d/state.json", "v1")
        real_rename = dfs.rename
        calls = {"n": 0}

        def crashy(src, dst, overwrite=False):
            calls["n"] += 1
            raise StorageError("simulated crash before publish")

        monkeypatch.setattr(dfs, "rename", crashy)
        with pytest.raises(StorageError):
            dfs.write_atomic_text("/d/state.json", "v2")
        monkeypatch.setattr(dfs, "rename", real_rename)
        # previous version intact, orphan temp left behind
        assert dfs.read_text("/d/state.json") == "v1"
        assert calls["n"] == 1
        leaked = [p for p in dfs.listdir("/d") if ".tmp-" in p]
        assert len(leaked) == 1

    def test_sweep_temps_reclaims_only_orphans_under_prefix(self, dfs):
        dfs.create("/a/.x.tmp-1", b"orphan")
        dfs.create("/a/sub/.y.tmp-2", b"orphan")
        dfs.create("/a/real", b"keep")
        dfs.create("/b/.z.tmp-3", b"other tree")
        swept = dfs.sweep_temps("/a")
        assert swept == ["/a/.x.tmp-1", "/a/sub/.y.tmp-2"]
        assert dfs.exists("/a/real")
        assert dfs.exists("/b/.z.tmp-3")

    def test_sweep_after_crash_window_frees_blocks(self, dfs, monkeypatch):
        """The full crash window: leak a temp mid-write, then recover."""
        def crashy(src, dst, overwrite=False):
            raise StorageError("crash")

        monkeypatch.setattr(dfs, "rename", crashy)
        with pytest.raises(StorageError):
            dfs.write_atomic("/led/records/rec-1.json", b"x" * 100)
        monkeypatch.undo()
        blocks_before = sum(n.block_count for n in dfs.datanodes.values())
        assert len(dfs.sweep_temps("/led")) == 1
        assert sum(n.block_count
                   for n in dfs.datanodes.values()) < blocks_before
        assert dfs.sweep_temps("/led") == []  # idempotent
