"""Cross-job partition caching: CacheManager + persist() + the pipeline.

Three layers, bottom up: the :class:`CacheManager` store itself (LRU
budget, DFS spill, write-through storage, pinning), ``persist()``
semantics through real jobs (compute-once, storage levels, eviction →
recompute), and the acceptance criterion from the PR issue — a
pipelined crawl → graph → analysis run scans each shared crawl dataset
exactly once, with every later read served from the cache.
"""

import pytest

from repro.core.platform import ExploratoryPlatform
from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import write_json_dataset
from repro.engine.cache import CacheManager
from repro.engine.context import SparkLiteContext
from repro.engine.metrics import STAGE_CACHED, STAGE_TASK
from repro.util.errors import EngineError


PARTS = [[1, 2, 3], [4, 5], []]


# ----------------------------------------------------------- CacheManager
class TestCacheManager:
    def test_put_get_roundtrip(self):
        manager = CacheManager()
        manager.put(7, PARTS)
        assert manager.get(7) == PARTS
        assert 7 in manager
        assert manager.stats()["hits"] == 1

    def test_unknown_id_is_a_miss(self):
        manager = CacheManager()
        assert manager.get(99) is None
        assert manager.stats()["misses"] == 1

    def test_budget_evicts_coldest_without_dfs(self):
        manager = CacheManager(budget_bytes=1)
        manager.put(1, PARTS)
        assert manager.get(1) is None  # over budget, dropped immediately
        assert manager.evictions == 1 and manager.spills == 0

    def test_lru_touch_protects_hot_entries(self):
        one_entry = len(__import__("pickle").dumps(
            PARTS, protocol=__import__("pickle").HIGHEST_PROTOCOL))
        manager = CacheManager(budget_bytes=2 * one_entry)
        manager.put(1, PARTS)
        manager.put(2, PARTS)
        manager.get(1)              # touch: 1 becomes hottest
        manager.put(3, PARTS)       # over budget → evict 2, not 1
        assert manager.get(1) == PARTS
        assert 2 not in manager
        assert manager.get(3) == PARTS

    def test_budget_spills_to_dfs_and_reloads(self):
        dfs = MiniDfs(num_datanodes=2)
        manager = CacheManager(budget_bytes=1, dfs=dfs)
        manager.put(5, PARTS)
        assert manager.spills == 1
        assert manager.bytes_in_memory == 0
        assert 5 in manager
        assert dfs.glob_parts("/engine/cache/rdd-5")
        assert manager.get(5) == PARTS  # reloaded from the spill
        assert manager.stats()["hits"] == 1

    def test_dfs_storage_writes_through(self):
        dfs = MiniDfs(num_datanodes=2)
        manager = CacheManager(dfs=dfs)
        manager.put(3, PARTS, storage="dfs")
        assert manager.bytes_in_memory == 0
        assert len(dfs.glob_parts("/engine/cache/rdd-3")) == len(PARTS)
        assert manager.get(3) == PARTS

    def test_unpersist_removes_spilled_parts(self):
        dfs = MiniDfs(num_datanodes=2)
        manager = CacheManager(dfs=dfs)
        manager.put(3, PARTS, storage="dfs")
        manager.unpersist(3)
        assert 3 not in manager
        assert dfs.glob_parts("/engine/cache/rdd-3") == []
        assert manager.get(3) is None

    def test_lost_spill_becomes_a_miss(self):
        dfs = MiniDfs(num_datanodes=2)
        manager = CacheManager(dfs=dfs)
        manager.put(3, PARTS, storage="dfs")
        for path in dfs.glob_parts("/engine/cache/rdd-3"):
            dfs.delete(path)
        assert manager.get(3) is None  # recompute from lineage instead
        assert 3 not in manager

    def test_unpicklable_entries_are_pinned(self):
        parts = [[(x for x in range(3))]]  # generators do not pickle
        manager = CacheManager(budget_bytes=0)
        manager.put(9, parts)
        assert manager.get(9) is parts  # never evicted, same object
        assert manager.evictions == 0

    def test_clear_empties_the_store(self):
        dfs = MiniDfs(num_datanodes=2)
        manager = CacheManager(dfs=dfs)
        manager.put(1, PARTS)
        manager.put(2, PARTS, storage="dfs")
        manager.clear()
        assert manager.stats()["entries"] == 0
        assert dfs.glob_parts("/engine/cache/rdd-2") == []


# ----------------------------------------------------- persist() semantics
class TestPersistThroughJobs:
    def _counting_rdd(self, sc, calls):
        def spy(x):
            calls.append(x)
            return x * 10
        return sc.parallelize(range(12), 3).map(spy)

    def test_persisted_lineage_computes_once(self):
        calls = []
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            rdd = self._counting_rdd(sc, calls).persist()
            first = rdd.collect()
            assert len(calls) == 12
            second = rdd.collect()
            assert second == first
            assert len(calls) == 12  # no recompute
            kinds = [s.kind for s in sc.last_job_metrics.stages]
            assert kinds == [STAGE_CACHED]

    def test_derived_job_reads_the_cache(self):
        calls = []
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            rdd = self._counting_rdd(sc, calls).persist()
            rdd.count()
            assert rdd.map(lambda x: x + 1).sum() == sum(
                x * 10 + 1 for x in range(12))
            assert len(calls) == 12

    def test_zero_budget_without_dfs_recomputes_correctly(self):
        calls = []
        with SparkLiteContext(parallelism=2, backend="serial",
                              cache_budget=0) as sc:
            rdd = self._counting_rdd(sc, calls).persist()
            assert rdd.collect() == rdd.collect()
            assert len(calls) == 24  # evicted between jobs → recomputed

    def test_zero_budget_with_dfs_serves_from_spill(self):
        calls = []
        dfs = MiniDfs(num_datanodes=2)
        with SparkLiteContext(parallelism=2, backend="serial",
                              cache_budget=0, cache_dfs=dfs) as sc:
            rdd = self._counting_rdd(sc, calls).persist()
            first = rdd.collect()
            assert sc.cache_manager.spills == 1
            assert rdd.collect() == first
            assert len(calls) == 12  # spill served, no recompute

    def test_dfs_storage_level(self):
        calls = []
        dfs = MiniDfs(num_datanodes=2)
        with SparkLiteContext(parallelism=2, backend="serial",
                              cache_dfs=dfs) as sc:
            rdd = self._counting_rdd(sc, calls).persist(storage="dfs")
            rdd.collect()
            assert dfs.glob_parts(f"/engine/cache/rdd-{rdd.rdd_id}")
            assert rdd.collect() == [x * 10 for x in range(12)]
            assert len(calls) == 12

    def test_unpersist_forces_recompute(self):
        calls = []
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            rdd = self._counting_rdd(sc, calls).persist()
            rdd.collect()
            rdd.unpersist()
            rdd.collect()
            assert len(calls) == 24

    def test_invalid_storage_level_rejected(self):
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            with pytest.raises(EngineError):
                sc.parallelize([1], 1).persist(storage="tape")

    def test_json_dataset_node_is_memoized(self):
        dfs = MiniDfs(num_datanodes=2)
        write_json_dataset(dfs, "/data/things",
                           [{"i": i} for i in range(20)], partitions=4)
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            first = sc.json_dataset(dfs, "/data/things")
            assert sc.json_dataset(dfs, "/data/things") is first

    def test_persisted_dataset_scanned_once_across_jobs(self):
        dfs = MiniDfs(num_datanodes=2)
        write_json_dataset(dfs, "/data/things",
                           [{"i": i} for i in range(20)], partitions=4)
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            sc.json_dataset(dfs, "/data/things").persist()
            total = sc.json_dataset(dfs, "/data/things") \
                .map(lambda r: r["i"]).sum()
            count = sc.json_dataset(dfs, "/data/things").count()
            assert (total, count) == (sum(range(20)), 20)
            scans = _scan_counts(sc.metrics_trace, "json:/data/things")
            assert scans == {STAGE_TASK: 1, STAGE_CACHED: 1}


def _scan_counts(trace, stage_name):
    """How often a named stage was materialized vs served from cache."""
    counts = {}
    for job in trace.jobs():
        for stage in job.stages:
            if stage.name == stage_name:
                counts[stage.kind] = counts.get(stage.kind, 0) + 1
    return counts


# ------------------------------------------------- pipeline scan-once proof
@pytest.fixture(scope="module")
def pipelined_platform(tiny_world):
    """A fresh platform run through crawl → graph → two analyses, with a
    clean metrics trace (the session ``crawled_platform`` is shared and
    may have run arbitrary jobs already)."""
    platform = ExploratoryPlatform(tiny_world)
    platform.run_full_crawl()
    platform.investor_graph()
    platform.run_plugin("engagement_table")
    platform.run_plugin("success_prediction")
    yield platform
    platform.close()


class TestPipelineScansDatasetsOnce:
    def test_each_dataset_materialized_at_most_once(self, pipelined_platform):
        trace = pipelined_platform.sc.metrics_trace
        for directory in ExploratoryPlatform.CRAWL_DATASET_DIRS:
            scans = _scan_counts(trace, f"json:{directory}")
            assert scans.get(STAGE_TASK, 0) <= 1, \
                f"{directory} scanned {scans} times"

    def test_shared_datasets_rescans_hit_the_cache(self, pipelined_platform):
        """The engagement and prediction analyses both read these four
        directories; the second (and any later) read must be a cache
        stage, never a rescan of the part files."""
        trace = pipelined_platform.sc.metrics_trace
        for directory in ("/crawl/angellist/startups",
                          "/crawl/crunchbase/organizations",
                          "/crawl/facebook/pages",
                          "/crawl/twitter/profiles"):
            scans = _scan_counts(trace, f"json:{directory}")
            assert scans.get(STAGE_TASK, 0) == 1, \
                f"{directory}: {scans}"
            assert scans.get(STAGE_CACHED, 0) >= 1, \
                f"{directory} never served from cache: {scans}"

    def test_cache_manager_saw_traffic(self, pipelined_platform):
        stats = pipelined_platform.sc.cache_manager.stats()
        assert stats["entries"] > 0
        assert stats["hits"] > 0
