"""Tests for weighted fair-share multi-tenant admission."""

import pytest

from repro.serve.admission import ADMIT
from repro.serve.metrics import STATUS_SHED_QUEUE, STATUS_SHED_RATE
from repro.serve.service import ServeRequest
from repro.serve.tenancy import (FairShareAdmission, Tenant,
                                 default_tenants)
from repro.util.errors import ConfigError


def _request(tenant, priority="interactive", key=1):
    return ServeRequest(kind="company", key=key, priority=priority,
                        tenant=tenant)


def _admission(weights=(1.0, 1.0), qps_limit=10.0, queue_depth=8,
               burst=None):
    return FairShareAdmission(qps_limit, queue_depth,
                              default_tenants(len(weights), list(weights)),
                              burst=burst)


class TestTenant:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Tenant("", 1.0)
        with pytest.raises(ConfigError):
            Tenant("t0", 0.0)
        with pytest.raises(ConfigError):
            Tenant("t0", -1.0)

    def test_default_tenants(self):
        tenants = default_tenants(3, [3.0, 1.0, 1.0])
        assert [t.tenant_id for t in tenants] == ["t0", "t1", "t2"]
        assert [t.weight for t in tenants] == [3.0, 1.0, 1.0]
        assert all(t.weight == 1.0 for t in default_tenants(2))
        with pytest.raises(ConfigError):
            default_tenants(0)
        with pytest.raises(ConfigError):
            default_tenants(2, [1.0])


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            _admission(qps_limit=0.0)
        with pytest.raises(ConfigError):
            _admission(queue_depth=0)
        with pytest.raises(ConfigError):
            FairShareAdmission(10.0, 8, [])
        with pytest.raises(ConfigError):
            FairShareAdmission(10.0, 8, [Tenant("a"), Tenant("a")])

    def test_share_math(self):
        admission = _admission(weights=(3.0, 1.0))
        assert admission.share("t0") == pytest.approx(0.75)
        assert admission.share("t1") == pytest.approx(0.25)
        with pytest.raises(ConfigError):
            admission.share("nope")

    def test_queue_depth_splits_evenly(self):
        admission = FairShareAdmission(10.0, 16, default_tenants(3))
        assert admission.tenant_queue_depth == 5
        # never below one slot, however many tenants
        tiny = FairShareAdmission(10.0, 2, default_tenants(5))
        assert tiny.tenant_queue_depth == 1


class TestIsolation:
    def test_unknown_tenant_raises(self):
        admission = _admission()
        with pytest.raises(ConfigError):
            admission.offer(_request("mystery"), now=0.0)

    def test_abusive_tenant_cannot_drain_siblings(self):
        admission = _admission(weights=(1.0, 1.0), qps_limit=10.0,
                               burst=4.0)
        # t0 floods at time zero until its own bucket runs dry
        sheds = 0
        for _ in range(50):
            decision = admission.offer(_request("t0"), now=0.0)
            if decision.status == STATUS_SHED_RATE:
                sheds += 1
        assert sheds > 0
        # t1's bucket is untouched: it still admits at the same instant
        assert admission.offer(_request("t1"), now=0.0).status == ADMIT

    def test_bucket_rate_follows_weight(self):
        admission = _admission(weights=(3.0, 1.0), qps_limit=8.0,
                               burst=4.0)
        assert admission.buckets["t0"].rate == pytest.approx(6.0)
        assert admission.buckets["t1"].rate == pytest.approx(2.0)

    def test_eviction_only_hits_same_tenant(self):
        admission = FairShareAdmission(
            1000.0, 4, default_tenants(2), burst=1000.0)
        # both tenants queue a bulk request; t0 fills its queue (depth 2)
        admission.offer(_request("t0", "bulk"), now=0.0)
        admission.offer(_request("t0", "bulk"), now=0.0)
        admission.offer(_request("t1", "bulk"), now=0.0)
        decision = admission.offer(_request("t0", "interactive"), now=0.0)
        assert decision.status == ADMIT
        assert decision.evicted is not None
        assert decision.evicted.tenant == "t0"
        assert admission.tenant_queue_len("t1") == 1

    def test_full_queue_sheds_equal_or_lower_priority(self):
        admission = FairShareAdmission(
            1000.0, 2, default_tenants(2), burst=1000.0)
        admission.offer(_request("t0", "interactive"), now=0.0)
        decision = admission.offer(_request("t0", "bulk"), now=0.0)
        assert decision.status == STATUS_SHED_QUEUE


class TestWfqDequeue:
    def test_dequeue_ratio_matches_weights(self):
        admission = FairShareAdmission(
            1000.0, 30, default_tenants(2, [2.0, 1.0]), burst=1000.0)
        for i in range(12):
            admission.offer(_request("t0", key=i), now=0.0)
            admission.offer(_request("t1", key=i), now=0.0)
        order = []
        for _ in range(9):
            order.append(admission.pop().tenant)
        # tags advance by 1/w: t0 (w=2) gets two dequeues per t1 one
        assert order.count("t0") == 6
        assert order.count("t1") == 3

    def test_pop_prefers_priority_within_tenant(self):
        admission = FairShareAdmission(
            1000.0, 8, default_tenants(1), burst=1000.0)
        admission.offer(_request("t0", "bulk", key=1), now=0.0)
        admission.offer(_request("t0", "interactive", key=2), now=0.0)
        assert admission.pop().key == 2
        assert admission.pop().key == 1
        assert admission.pop() is None

    def test_idle_tenant_does_not_bank_credit(self):
        admission = FairShareAdmission(
            1000.0, 40, default_tenants(2), burst=1000.0)
        # t0 drains alone for a while...
        for i in range(10):
            admission.offer(_request("t0", key=i), now=0.0)
        for _ in range(10):
            assert admission.pop().tenant == "t0"
        # ...then t1 shows up; it may not monopolise to "catch up"
        for i in range(6):
            admission.offer(_request("t0", key=100 + i), now=0.0)
            admission.offer(_request("t1", key=100 + i), now=0.0)
        order = [admission.pop().tenant for _ in range(6)]
        assert order.count("t0") == 3
        assert order.count("t1") == 3

    def test_queue_len_and_high_water(self):
        admission = FairShareAdmission(
            1000.0, 8, default_tenants(2), burst=1000.0)
        for i in range(3):
            admission.offer(_request("t0", key=i), now=0.0)
            admission.offer(_request("t1", key=i), now=0.0)
        assert admission.queue_len == 6
        assert admission.max_queue_len == 6
        assert len(admission.queued()) == 6
        while admission.pop() is not None:
            pass
        assert admission.queue_len == 0
        assert admission.max_queue_len == 6


class TestTenantSloAccounting:
    """Degradation-ladder fallbacks must land in the per-tenant ledger:
    an SLO report that lumps stale/summary into 'answered' hides what
    kind of answer fair share actually bought each tenant."""

    def test_degraded_results_split_per_tenant(self):
        from repro.serve.metrics import (ServeMetrics, STATUS_CACHED,
                                         STATUS_FRESH, STATUS_STALE,
                                         STATUS_SUMMARY)
        metrics = ServeMetrics()
        for status in (STATUS_FRESH, STATUS_CACHED, STATUS_STALE,
                       STATUS_STALE, STATUS_SUMMARY):
            metrics.record_tenant_result("t0", status)
        metrics.record_tenant_result("t1", STATUS_FRESH)
        t0 = metrics.tenant_counters("t0").as_dict()
        # the aggregate stays intact (bench gates read 'answered')...
        assert t0["answered"] == 5
        # ...and the degraded ladder is now visible per tenant
        assert t0["stale_served"] == 2
        assert t0["summary_served"] == 1
        t1 = metrics.tenant_counters("t1").as_dict()
        assert (t1["answered"], t1["stale_served"],
                t1["summary_served"]) == (1, 0, 0)

    def test_deadline_not_counted_as_degraded(self):
        from repro.serve.metrics import ServeMetrics, STATUS_DEADLINE
        metrics = ServeMetrics()
        metrics.record_tenant_result("t0", STATUS_DEADLINE)
        t0 = metrics.tenant_counters("t0").as_dict()
        assert t0["deadline_exceeded"] == 1
        assert t0["answered"] == 0
        assert t0["stale_served"] == 0 and t0["summary_served"] == 0
