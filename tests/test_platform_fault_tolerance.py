"""Platform-level fault-injection integration tests.

The unit tests exercise retry logic against scripted servers; these run
the *whole* §3 pipeline against flaky, slow sources and require the
final datasets to be byte-identical to a fault-free crawl.
"""

import operator

import pytest

from repro.core.platform import ExploratoryPlatform, PlatformConfig
from repro.dfs.jsonlines import read_json_dataset
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.world.config import WorldConfig
from repro.world.generator import generate_world


def _market_pair(record):
    return (record.get("market") or "unknown", 1)


@pytest.fixture(scope="module")
def flaky_run():
    """One world crawled twice: clean vs 3% faults + latency."""
    world = generate_world(WorldConfig(scale=0.002, seed=77))
    clean = ExploratoryPlatform(world)
    clean.run_full_crawl()

    flaky = ExploratoryPlatform(world, config=PlatformConfig(
        faults=FaultPlan.flaky(p_error=0.03, seed=5),
        latency=LatencyModel.typical(seed=5)))
    flaky.run_full_crawl()
    yield clean, flaky
    clean.close()
    flaky.close()


class TestFaultyPipeline:
    def test_crawl_completes_despite_faults(self, flaky_run):
        clean, flaky = flaky_run
        assert flaky.crawl_summary.angellist.startups \
            == clean.crawl_summary.angellist.startups
        assert flaky.crawl_summary.angellist.users \
            == clean.crawl_summary.angellist.users

    def test_retries_actually_happened(self, flaky_run):
        _clean, flaky = flaky_run
        stats = flaky.crawl_summary.angellist.client_stats
        assert stats.retries > 0
        assert stats.failures == 0

    def test_datasets_identical_to_clean_run(self, flaky_run):
        clean, flaky = flaky_run
        for directory in ("/crawl/angellist/startups",
                          "/crawl/angellist/investments",
                          "/crawl/crunchbase/organizations",
                          "/crawl/twitter/profiles"):
            clean_records = sorted(
                read_json_dataset(clean.dfs, directory),
                key=lambda r: sorted(r.items()).__repr__())
            flaky_records = sorted(
                read_json_dataset(flaky.dfs, directory),
                key=lambda r: sorted(r.items()).__repr__())
            assert clean_records == flaky_records, directory

    def test_latency_accrues_simulated_time(self, flaky_run):
        clean, flaky = flaky_run
        assert flaky.crawl_summary.angellist.sim_duration \
            > clean.crawl_summary.angellist.sim_duration

    def test_analyses_agree(self, flaky_run):
        clean, flaky = flaky_run
        clean_table = clean.run_plugin("engagement_table")
        flaky_table = flaky.run_plugin("engagement_table")
        for clean_row, flaky_row in zip(clean_table.rows, flaky_table.rows):
            assert clean_row == flaky_row


@pytest.fixture(scope="module")
def backend_runs():
    """The same flaky world crawled under two engine backends."""
    world = generate_world(WorldConfig(scale=0.002, seed=77))
    platforms = {}
    for backend in ("serial", "thread"):
        platform = ExploratoryPlatform(world, config=PlatformConfig(
            faults=FaultPlan.flaky(p_error=0.03, seed=11),
            engine_backend=backend))
        platform.run_full_crawl()
        platforms[backend] = platform
    yield platforms
    for platform in platforms.values():
        platform.close()


class TestBackendsUnderFaults:
    """A flaky crawl must retry to completion with identical frontier
    output whichever backend the engine pipeline runs on."""

    def test_retries_to_completion_on_both_backends(self, backend_runs):
        for backend, platform in backend_runs.items():
            stats = platform.crawl_summary.angellist.client_stats
            assert stats.retries > 0, backend
            assert stats.failures == 0, backend

    def test_frontier_output_identical_across_backends(self, backend_runs):
        serial, threaded = (backend_runs["serial"], backend_runs["thread"])
        assert serial.crawl_summary.angellist.rounds \
            == threaded.crawl_summary.angellist.rounds
        for directory in ("/crawl/angellist/startups",
                          "/crawl/angellist/investments"):
            serial_records = list(read_json_dataset(serial.dfs, directory))
            thread_records = list(read_json_dataset(threaded.dfs, directory))
            assert serial_records == thread_records, directory

    def test_engine_pipeline_identical_across_backends(self, backend_runs):
        """Drive the crawled frontier through an engine job on each
        backend: byte-identical aggregation and correct attribution."""
        outputs = {}
        for backend, platform in backend_runs.items():
            counts = (platform.sc
                      .json_dataset(platform.dfs, "/crawl/angellist/startups")
                      .map(_market_pair)
                      .reduce_by_key(operator.add)
                      .collect())
            assert platform.sc.last_job_metrics.backend == backend
            assert platform.sc.last_job_metrics.shuffles == 1
            outputs[backend] = counts
        assert outputs["serial"] == outputs["thread"]
        assert sum(n for _m, n in outputs["serial"]) \
            == backend_runs["serial"].crawl_summary.angellist.startups
