"""Unit tests for the shuffle fast path primitives.

The differential/property suites prove the fast path is invisible in
job results; these tests pin the primitives themselves — block sealing
and compression, range-partition planning, map-side combine counts and
broadcast-side selection — so a regression is reported at the layer
that broke, not three stages downstream.
"""

import operator
import pickle

import pytest

from repro.engine.context import SparkLiteContext
from repro.engine.rdd import (JobRunner, _DistinctOp, _ReduceByKeyOp,
                              _pair_key)
from repro.engine.shuffle import (DEFAULT_COMPRESS_THRESHOLD,
                                  BroadcastHashJoinOp, CogroupJoinTask,
                                  HashPartitioner, MapShuffleTask,
                                  RangePartitioner, ReduceShuffleTask,
                                  ShuffleBlock, _hash_partition,
                                  merge_pieces, payload_bytes,
                                  plan_range_partitioner)


# ------------------------------------------------------------------- blocks
class TestShuffleBlock:
    def test_seal_decode_roundtrip(self):
        items = [(k % 3, "v" * k) for k in range(50)]
        block = ShuffleBlock.seal(items)
        assert block.decode() == items
        assert block.count == 50
        assert block.codec == ShuffleBlock.CODEC_PICKLE
        # bytes moved = payload + the pickled envelope around it (the
        # old ``raw_bytes == nbytes`` identity under-counted headers)
        assert block.nbytes == block.raw_bytes + block.header_bytes
        assert block.header_bytes > 0
        assert block.pickled_nbytes == block.nbytes
        assert block.shm_bytes == 0

    def test_empty_block(self):
        block = ShuffleBlock.seal([])
        assert block.decode() == []
        assert block.count == 0

    def test_compresses_above_threshold(self):
        items = ["repetitive-payload"] * 400
        block = ShuffleBlock.seal(items, compress=True, threshold=64)
        assert block.codec == ShuffleBlock.CODEC_ZLIB
        assert block.nbytes < block.raw_bytes
        assert block.decode() == items

    def test_small_blocks_stay_raw(self):
        items = [1, 2, 3]
        block = ShuffleBlock.seal(items, compress=True,
                                  threshold=DEFAULT_COMPRESS_THRESHOLD)
        assert block.codec == ShuffleBlock.CODEC_PICKLE
        assert block.decode() == items

    def test_incompressible_payload_stays_raw(self):
        # pseudo-random bytes: zlib output would be *larger*; keep raw
        import random
        rng = random.Random(1234)
        items = [rng.randbytes(512) for _ in range(8)]
        block = ShuffleBlock.seal(items, compress=True, threshold=1)
        assert block.codec == ShuffleBlock.CODEC_PICKLE
        assert block.decode() == items

    def test_block_is_picklable(self):
        block = ShuffleBlock.seal(list(range(20)), compress=True, threshold=1)
        clone = pickle.loads(pickle.dumps(block))
        assert clone.decode() == block.decode()
        assert clone.codec == block.codec


# ------------------------------------------------------------- partitioners
class TestPartitioners:
    def test_hash_partitioner_matches_stable_hash(self):
        part = HashPartitioner(lambda kv: kv[0], 7)
        for key in ["a", "b", 1, 1.0, None, ("x", 2)]:
            assert part((key, "ignored")) == _hash_partition(key, 7)

    def test_range_partitioner_ascending(self):
        part = RangePartitioner(lambda x: x, cuts=[10, 20])
        assert [part(x) for x in (5, 10, 15, 20, 25)] == [0, 1, 1, 2, 2]

    def test_range_partitioner_descending_mirrors(self):
        asc = RangePartitioner(lambda x: x, cuts=[10, 20])
        desc = RangePartitioner(lambda x: x, cuts=[10, 20], descending=True)
        for x in (5, 10, 15, 20, 25):
            assert desc(x) == len(asc.cuts) - asc(x)

    def test_equal_keys_share_a_bucket(self):
        part = plan_range_partitioner([[3] * 50 + [7] * 50], 4, lambda x: x)
        assert len({part(3) for _ in range(5)}) == 1
        assert len({part(7) for _ in range(5)}) == 1

    def test_plan_is_deterministic(self):
        parts = [[(i * 37) % 101 for i in range(200)],
                 [(i * 13) % 101 for i in range(150)]]
        first = plan_range_partitioner(parts, 5, lambda x: x)
        second = plan_range_partitioner(parts, 5, lambda x: x)
        assert first.cuts == second.cuts
        assert first.cuts == sorted(first.cuts)
        assert len(first.cuts) <= 4  # at most num_buckets - 1 cuts

    def test_plan_collapses_duplicate_cuts(self):
        part = plan_range_partitioner([[1] * 100], 8, lambda x: x)
        assert len(part.cuts) <= 1

    def test_plan_empty_input_single_bucket(self):
        part = plan_range_partitioner([[], []], 4, lambda x: x)
        assert part.cuts == []
        assert part(42) == 0

    def test_plan_buckets_preserve_order(self):
        data = [(i * 61) % 331 for i in range(400)]
        part = plan_range_partitioner([data], 6, lambda x: x)
        buckets = [[] for _ in range(6)]
        for x in data:
            buckets[part(x)].append(x)
        flattened = [x for bucket in buckets for x in sorted(bucket)]
        assert flattened == sorted(data)


# ------------------------------------------------------------------ map task
class TestMapShuffleTask:
    def test_round_robin_uses_global_offset(self):
        task = MapShuffleTask(None, 3)
        out = task((4, list("abcde")))  # elements 4..8 of the job
        assert out.buckets == [["c"], ["a", "d"], ["b", "e"]]
        assert (out.records_in, out.records_out) == (5, 5)

    def test_hash_placement(self):
        task = MapShuffleTask(HashPartitioner(lambda kv: kv[0], 4), 4)
        pairs = [(k % 6, k) for k in range(30)]
        out = task((0, pairs))
        for index, bucket in enumerate(out.buckets):
            assert all(_hash_partition(k, 4) == index for k, _ in bucket)

    def test_combiner_shrinks_records_out(self):
        task = MapShuffleTask(HashPartitioner(lambda kv: kv[0], 2), 2,
                              combiner=_ReduceByKeyOp(operator.add))
        pairs = [(k % 4, 1) for k in range(100)]
        out = task((0, pairs))
        assert out.records_in == 100
        assert out.records_out == 4  # one partial per distinct key
        merged = merge_pieces([b for b in out.buckets])
        assert sorted(merged) == [(0, 25), (1, 25), (2, 25), (3, 25)]

    def test_distinct_combiner(self):
        task = MapShuffleTask(HashPartitioner(lambda x: x, 2), 2,
                              combiner=_DistinctOp())
        out = task((0, [1, 1, 2, 2, 2, 3]))
        assert out.records_out == 3

    def test_seal_wraps_nonempty_buckets_only(self):
        task = MapShuffleTask(HashPartitioner(lambda x: 0, 3), 3, seal=True)
        out = task((0, [10, 20]))
        assert isinstance(out.buckets[0], ShuffleBlock)
        assert out.buckets[1] is None and out.buckets[2] is None
        assert merge_pieces(out.buckets) == [10, 20]

    def test_reduce_task_merges_in_map_order(self):
        pieces = [ShuffleBlock.seal([(0, "a")]), None, [(0, "b")],
                  ShuffleBlock.seal([(0, "c")], compress=True, threshold=1)]
        result = ReduceShuffleTask(_ReduceByKeyOp(operator.add))(pieces)
        assert result == [(0, "abc")]


# --------------------------------------------------------------------- joins
class TestJoinOps:
    TABLE = {1: ["x", "y"], 2: ["z"]}

    def test_broadcast_inner_small_right(self):
        op = BroadcastHashJoinOp(self.TABLE, "inner", small_is_right=True)
        out = op([(1, "L1"), (3, "L3"), (2, "L2")])
        assert out == [(1, ("L1", "x")), (1, ("L1", "y")), (2, ("L2", "z"))]

    def test_broadcast_left_outer_emits_unmatched(self):
        op = BroadcastHashJoinOp(self.TABLE, "left", small_is_right=True)
        out = op([(3, "L3"), (2, "L2")])
        assert out == [(3, ("L3", None)), (2, ("L2", "z"))]

    def test_broadcast_small_left_keeps_orientation(self):
        op = BroadcastHashJoinOp(self.TABLE, "inner", small_is_right=False)
        out = op([(1, "R1"), (9, "R9")])
        assert out == [(1, ("x", "R1")), (1, ("y", "R1"))]

    def test_cogroup_inner_nested_order(self):
        task = CogroupJoinTask("inner")
        out = task(([[(1, "a"), (2, "b"), (1, "c")]],
                    [[(1, "x"), (1, "y")]]))
        assert out == [(1, ("a", "x")), (1, ("a", "y")),
                       (1, ("c", "x")), (1, ("c", "y"))]

    def test_cogroup_left_outer(self):
        task = CogroupJoinTask("left")
        out = task(([[(1, "a"), (5, "q")]], [[(1, "x")]]))
        assert out == [(1, ("a", "x")), (5, ("q", None))]

    def test_payload_bytes(self):
        assert payload_bytes([[1, 2], [3]]) > 0
        assert payload_bytes([[(x for x in range(3))]]) == 0  # unpicklable

    def test_broadcast_side_respects_threshold(self):
        small = [[(1, "a")]]
        big = [[(k, k) for k in range(2000)]]
        pick = JobRunner._broadcast_side
        fits = payload_bytes(small)
        small_is_right, table, nbytes = pick(big, small, "inner", fits)
        assert small_is_right is True and table == {1: ["a"]}
        assert nbytes == fits
        assert pick(big, small, "inner", 1) is None  # over-threshold
        # the left side may broadcast only for inner joins
        small_is_right, _table, nbytes = pick(small, big, "inner", fits)
        assert small_is_right is False and nbytes == fits
        assert pick(small, big, "left", fits) is None


# ----------------------------------------------------- metrics through jobs
class TestShuffleMetrics:
    def test_records_pre_and_post_combine(self):
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            (sc.parallelize([(k % 3, 1) for k in range(90)], 3)
             .reduce_by_key(operator.add).collect())
            metrics = sc.last_job_metrics
        assert metrics.shuffle_records == 90          # raw, pre-combine
        assert metrics.shuffle_records_moved == 9     # 3 keys × 3 map tasks
        assert metrics.shuffle_bytes > 0

    def test_uncombined_moves_everything(self):
        with SparkLiteContext(parallelism=2, backend="serial",
                              shuffle_combine=False) as sc:
            (sc.parallelize([(k % 3, 1) for k in range(90)], 3)
             .reduce_by_key(operator.add).collect())
            metrics = sc.last_job_metrics
        assert metrics.shuffle_records == 90
        assert metrics.shuffle_records_moved == 90

    def test_compression_reported_in_bytes(self):
        with SparkLiteContext(parallelism=2, backend="serial",
                              shuffle_compress=True,
                              shuffle_compress_threshold=32) as sc:
            (sc.parallelize([(k % 2, "blob" * 50) for k in range(500)], 4)
             .group_by_key().collect())
            metrics = sc.last_job_metrics
        assert 0 < metrics.shuffle_bytes < metrics.shuffle_bytes_raw

    def test_broadcast_join_stage_flagged(self):
        with SparkLiteContext(parallelism=2, backend="serial",
                              broadcast_join_threshold=1 << 20) as sc:
            left = sc.parallelize([(k % 5, k) for k in range(40)], 3)
            right = sc.parallelize([(k, -k) for k in range(5)], 2)
            left.join(right).collect()
            metrics = sc.last_job_metrics
        assert metrics.broadcast_joins == 1
        assert metrics.shuffles == 0
        assert any(stage.broadcast for stage in metrics.stages)

    def test_pair_key_helper(self):
        assert _pair_key((3, "v")) == 3
