"""Tests for the command-line interface (all at micro scale)."""

import pytest

from repro.cli import build_parser, main

SCALE = ["--scale", "0.003", "--seed", "5"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dance"])

    def test_analyze_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "astrology"])


class TestCommands:
    def test_crawl(self, capsys):
        assert main(["crawl", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "BFS rounds" in out
        assert "CrunchBase" in out

    def test_crawl_save_and_reload(self, tmp_path, capsys):
        path = str(tmp_path / "world.json.gz")
        assert main(["crawl", *SCALE, "--save", path]) == 0
        assert main(["analyze", "concentration", "--world", path]) == 0
        out = capsys.readouterr().out
        assert "bipartite graph" in out

    def test_analyze_engagement(self, capsys):
        assert main(["analyze", "engagement", *SCALE]) == 0
        assert "No social media presence" in capsys.readouterr().out

    def test_analyze_investors(self, capsys):
        assert main(["analyze", "investors", *SCALE]) == 0
        assert "median=1" in capsys.readouterr().out

    def test_analyze_communities(self, capsys):
        assert main(["analyze", "communities", *SCALE,
                     "--pairs", "2000"]) == 0
        assert "communities" in capsys.readouterr().out

    def test_analyze_prediction(self, capsys):
        assert main(["analyze", "prediction", *SCALE]) == 0
        assert "AUC" in capsys.readouterr().out

    def test_theory(self, capsys):
        assert main(["theory", *SCALE, "raised ~ has_facebook"]) == 0
        assert "odds ratio" in capsys.readouterr().out

    def test_snapshot(self, capsys):
        assert main(["snapshot", *SCALE, "--days", "8",
                     "--hazard", "0.05"]) == 0
        assert "lift" in capsys.readouterr().out

    def test_figures(self, tmp_path, capsys):
        out = str(tmp_path / "artifacts")
        assert main(["figures", *SCALE, "--out", out,
                     "--pairs", "2000"]) == 0
        import os
        written = set(os.listdir(out))
        assert {"fig6_engagement_table.txt", "fig3_investor_cdf.txt",
                "fig4_shared_size_cdf.txt", "fig5_community_pdf.txt",
                "fig7a_strong.svg", "fig7b_weak.svg",
                "sec51_concentration.txt", "summary.json"} <= written

    def test_select_communities(self, capsys):
        assert main(["select-communities", *SCALE,
                     "--candidates", "2", "4"]) == 0
        assert "best" in capsys.readouterr().out


class TestResilienceFlags:
    def test_fault_profile_builds_a_schedule(self):
        from repro.cli import _platform_config
        args = build_parser().parse_args(
            ["crawl", "--fault-profile", "chaos", "--chaos-seed", "9",
             "--task-retries", "3"])
        config = _platform_config(args)
        assert config.faults.seed == 9
        assert len(config.faults.kinds) == 6
        assert config.task_retries == 3
        # the chaos profile hardens the clients to match
        assert config.client_max_retries == 10
        assert config.client_backoff_jitter == 0.25

    def test_default_profile_is_fault_free(self):
        from repro.cli import _platform_config
        config = _platform_config(build_parser().parse_args(["crawl"]))
        assert config.faults.specs == []
        assert config.task_retries == 1

    def test_crawl_under_flaky_profile(self, capsys):
        assert main(["crawl", *SCALE, "--fault-profile", "flaky",
                     "--chaos-seed", "3"]) == 0
        assert "BFS rounds" in capsys.readouterr().out


class TestServeCommands:
    def test_serve_answers_sample_queries(self, capsys):
        assert main(["serve", *SCALE, "--queries", "6"]) == 0
        out = capsys.readouterr().out
        assert "fresh" in out
        assert "health=" in out

    def test_serve_bench_reports_and_writes_json(self, tmp_path, capsys):
        import json
        path = str(tmp_path / "serving.json")
        assert main(["serve-bench", *SCALE, "--qps-limit", "20",
                     "--queue-depth", "8", "--duration", "2",
                     "--serve-chaos", "1.0", "--brownout-at", "10",
                     "--slow-datanode", "0.05", "--json", path]) == 0
        out = capsys.readouterr().out
        assert "10x the 20 qps limit" in out
        assert "shed" in out
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["offered"] > report["admitted"]
        assert report["max_queue_len"] <= 8
        assert report["metrics"]["totals"]["answered"] > 0

    def test_serve_bench_custom_deadline_and_ttl_flags(self, capsys):
        assert main(["serve-bench", *SCALE, "--qps-limit", "10",
                     "--overload", "3", "--duration", "2",
                     "--default-deadline", "0.5",
                     "--stale-ttl", "60"]) == 0
        assert "goodput" in capsys.readouterr().out


class TestShardedServeCommands:
    def test_serve_bench_sharded_multi_tenant(self, tmp_path, capsys):
        import json
        path = str(tmp_path / "sharded.json")
        assert main(["serve-bench", *SCALE, "--qps-limit", "20",
                     "--duration", "2", "--shards", "4",
                     "--shard-replicas", "2", "--tenants", "3",
                     "--fair-share", "--tenant-weights", "3,1,1",
                     "--autoscale", "--serve-shard-chaos", "1.0",
                     "--json", path]) == 0
        out = capsys.readouterr().out
        assert "shard" in out
        assert "tenant t0" in out
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
        assert set(report["per_tenant"]) <= {"t0", "t1", "t2"}
        assert report["metrics"]["shards"]
        assert report["metrics"]["totals"]["answered"] > 0

    def test_serve_sharded_queries(self, capsys):
        assert main(["serve", *SCALE, "--queries", "6",
                     "--shards", "2"]) == 0
        assert "fresh" in capsys.readouterr().out

    def test_fair_share_requires_multiple_tenants(self):
        # --fair-share with a single tenant falls back to the plain
        # admission controller rather than rejecting "default" traffic
        assert main(["serve", *SCALE, "--queries", "3", "--shards", "2",
                     "--fair-share", "--tenants", "1"]) == 0
