"""Tests for hedged replica reads on the MiniDfs."""

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.util.errors import NotFoundError, StorageError

PAYLOAD = bytes(range(256)) * 8  # several 64-byte blocks


@pytest.fixture()
def dfs():
    fs = MiniDfs(num_datanodes=3, block_size=64, replication=2)
    fs.create("/serve/part-00000", PAYLOAD)
    fs.create("/serve/single", b"one-block-of-data")
    return fs


def _primary_and_secondary(fs, path):
    block = fs.stat(path).blocks[0]
    return block.locations[0], block.locations[1]


class TestHedgedRead:
    def test_matches_plain_read(self, dfs):
        hedged = dfs.read_hedged("/serve/part-00000")
        assert hedged.data == dfs.read("/serve/part-00000")
        assert hedged.data == PAYLOAD

    def test_fast_primary_never_hedges(self, dfs):
        for node_id in dfs.datanodes:
            dfs.set_datanode_latency(node_id, 0.001)
        hedged = dfs.read_hedged("/serve/single", hedge_after_s=0.03)
        assert hedged.hedges_launched == 0
        assert hedged.hedges_won == 0
        assert hedged.elapsed_s == pytest.approx(0.001)

    def test_slow_primary_hedge_wins(self, dfs):
        primary, _ = _primary_and_secondary(dfs, "/serve/single")
        for node_id in dfs.datanodes:
            dfs.set_datanode_latency(
                node_id, 0.1 if node_id == primary else 0.001)
        hedged = dfs.read_hedged("/serve/single", hedge_after_s=0.03)
        assert hedged.data == b"one-block-of-data"
        assert hedged.hedges_launched == 1
        assert hedged.hedges_won == 1
        # the block paid hedge_after + secondary, not the primary's 100 ms
        assert hedged.elapsed_s == pytest.approx(0.031)
        assert dfs.hedges_launched == 1
        assert dfs.hedges_won == 1

    def test_hedge_launched_but_lost_keeps_primary(self, dfs):
        # every replica slow: the hedge (hedge_after + secondary) costs
        # more than just waiting for the primary, so it loses
        for node_id in dfs.datanodes:
            dfs.set_datanode_latency(node_id, 0.05)
        hedged = dfs.read_hedged("/serve/single", hedge_after_s=0.03)
        assert hedged.hedges_launched == 1
        assert hedged.hedges_won == 0
        assert hedged.elapsed_s == pytest.approx(0.05)
        assert hedged.data == b"one-block-of-data"

    def test_corrupt_winner_falls_back_to_strict_path(self, dfs):
        primary, _ = _primary_and_secondary(dfs, "/serve/part-00000")
        dfs.corrupt_block("/serve/part-00000", block_index=0,
                          node_id=primary)
        hedged = dfs.read_hedged("/serve/part-00000")
        assert hedged.data == PAYLOAD  # checksum failover still applies

    def test_latency_validation(self, dfs):
        with pytest.raises(StorageError):
            dfs.set_datanode_latency("dn0", -0.1)
        with pytest.raises(NotFoundError):
            dfs.set_datanode_latency("dn99", 0.1)

    def test_missing_file(self, dfs):
        with pytest.raises(NotFoundError):
            dfs.read_hedged("/serve/absent")


class TestWastedReads:
    """Every launched hedge leaves one abandoned loser read behind."""

    def test_no_hedge_no_waste(self, dfs):
        for node_id in dfs.datanodes:
            dfs.set_datanode_latency(node_id, 0.001)
        hedged = dfs.read_hedged("/serve/single", hedge_after_s=0.03)
        assert hedged.wasted_reads == 0
        assert dfs.hedge_wasted_reads == 0

    def test_winning_hedge_wastes_the_primary(self, dfs):
        primary, _ = _primary_and_secondary(dfs, "/serve/single")
        for node_id in dfs.datanodes:
            dfs.set_datanode_latency(
                node_id, 0.1 if node_id == primary else 0.001)
        hedged = dfs.read_hedged("/serve/single", hedge_after_s=0.03)
        assert hedged.hedges_launched == 1
        assert hedged.wasted_reads == 1
        assert dfs.hedge_wasted_reads == 1

    def test_losing_hedge_is_wasted_too(self, dfs):
        for node_id in dfs.datanodes:
            dfs.set_datanode_latency(node_id, 0.05)
        hedged = dfs.read_hedged("/serve/single", hedge_after_s=0.03)
        assert hedged.hedges_won == 0
        assert hedged.wasted_reads == 1

    def test_counter_accumulates_across_reads(self, dfs):
        for node_id in dfs.datanodes:
            dfs.set_datanode_latency(node_id, 0.05)
        first = dfs.read_hedged("/serve/part-00000", hedge_after_s=0.03)
        second = dfs.read_hedged("/serve/single", hedge_after_s=0.03)
        assert dfs.hedge_wasted_reads \
            == first.wasted_reads + second.wasted_reads
        assert dfs.hedge_wasted_reads >= 2
