"""Tests for the simulated HTTP substrate."""

import pytest

from repro.net.http import Request, Response, Route, SimServer, paginate
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.util.clock import SimClock


class TestRoute:
    def test_exact_match(self):
        route = Route("GET", "/a/b", lambda r: Response.json({}))
        assert route.match("GET", "/a/b") == {}

    def test_path_params_extracted(self):
        route = Route("GET", "/1/startups/:id", lambda r: Response.json({}))
        assert route.match("GET", "/1/startups/42") == {"id": "42"}

    def test_method_mismatch(self):
        route = Route("GET", "/a", lambda r: Response.json({}))
        assert route.match("POST", "/a") is None

    def test_length_mismatch(self):
        route = Route("GET", "/a/:x", lambda r: Response.json({}))
        assert route.match("GET", "/a/b/c") is None


class TestRequest:
    def test_bearer_token(self):
        req = Request("GET", "/", headers={"Authorization": "Bearer tok1"})
        assert req.token == "tok1"

    def test_query_token(self):
        req = Request("GET", "/", params={"access_token": "tok2"})
        assert req.token == "tok2"

    def test_no_token(self):
        assert Request("GET", "/").token is None


class TestSimServer:
    def _make(self, **kwargs) -> SimServer:
        server = SimServer(**kwargs)
        server.route("GET", "/hello/:name",
                     lambda r: Response.json({"hi": r.path_params["name"]}))
        return server

    def test_dispatch(self):
        server = self._make()
        response = server.get("/hello/world")
        assert response.ok
        assert response.body == {"hi": "world"}

    def test_unknown_route_404(self):
        assert self._make().get("/nope").status == 404

    def test_request_count_increments(self):
        server = self._make()
        server.get("/hello/a")
        server.get("/hello/b")
        assert server.request_count == 2

    def test_latency_advances_clock(self):
        clock = SimClock()
        server = self._make(clock=clock,
                            latency=LatencyModel(base=0.25, jitter=0.0))
        server.get("/hello/x")
        assert clock.now() == pytest.approx(0.25)

    def test_fault_injection_produces_5xx(self):
        server = self._make(faults=FaultPlan.flaky(p_error=0.999))
        response = server.get("/hello/x")
        assert response.status in (500, 503)

    def test_fault_free_plan_never_fails(self):
        server = self._make(faults=FaultPlan.none())
        assert all(server.get("/hello/x").ok for _ in range(20))


class TestPaginate:
    def test_slices(self):
        items, last = paginate(list(range(10)), page=2, per_page=4)
        assert items == [4, 5, 6, 7]
        assert last == 3

    def test_empty_list_one_page(self):
        items, last = paginate([], page=1, per_page=10)
        assert items == []
        assert last == 1

    def test_page_past_end_empty(self):
        items, last = paginate([1, 2], page=5, per_page=2)
        assert items == []

    def test_invalid_page(self):
        with pytest.raises(ValueError):
            paginate([1], page=0, per_page=1)


class TestLatencyModel:
    def test_deterministic_jitter(self):
        model = LatencyModel(base=0.1, jitter=0.2, seed=4)
        assert model.sample(10) == model.sample(10)

    def test_jitter_within_bounds(self):
        model = LatencyModel(base=0.1, jitter=0.2, seed=4)
        for index in range(100):
            assert 0.1 <= model.sample(index) <= 0.3


class TestFaultPlan:
    def test_rate_roughly_matches(self):
        plan = FaultPlan.flaky(p_error=0.2, seed=1)
        failures = sum(plan.inject(i) is not None for i in range(2000))
        assert 300 < failures < 500

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            FaultPlan.flaky(p_error=1.0)
