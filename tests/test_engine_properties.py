"""Hypothesis property tests for RDD semantics.

For arbitrary small datasets and partition counts the engine must agree
with plain Python: ``collect()`` round-trips ``parallelize``,
``reduce_by_key`` agrees with a dict-based fold, ``count()``/``sum()``
agree with the builtins, and shuffles merge keys that Python considers
equal (including the nasty cross-type ``1 == 1.0 == True`` cases).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.engine.context import SparkLiteContext  # noqa: E402

SETTINGS = settings(max_examples=30, deadline=None)

ints = st.lists(st.integers(-1_000, 1_000), max_size=60)
partitions = st.integers(min_value=1, max_value=8)
#: keys spanning types with cross-type equality (1 == 1.0 == True)
keys = st.one_of(
    st.integers(-5, 5),
    st.booleans(),
    st.none(),
    st.sampled_from([0.0, 1.0, 2.5, -3.0]),
    st.text(alphabet="abcγ", max_size=3),
    st.tuples(st.integers(0, 3), st.text(alphabet="xy", max_size=2)),
)
pairs = st.lists(st.tuples(keys, st.integers(-50, 50)), max_size=50)


def _sc(parallelism=2, backend="serial", **kwargs):
    return SparkLiteContext(parallelism=parallelism, backend=backend,
                            **kwargs)


@given(data=ints, parts=partitions)
@SETTINGS
def test_parallelize_collect_roundtrip(data, parts):
    with _sc() as sc:
        assert sc.parallelize(data, parts).collect() == data


@given(data=ints, parts=partitions)
@SETTINGS
def test_count_and_sum_agree_with_builtins(data, parts):
    with _sc() as sc:
        rdd = sc.parallelize(data, parts)
        assert rdd.count() == len(data)
        assert rdd.sum() == sum(data)


@given(data=pairs, parts=partitions, width=partitions)
@SETTINGS
def test_reduce_by_key_agrees_with_dict_fold(data, parts, width):
    expected = {}
    for k, v in data:
        expected[k] = expected[k] + v if k in expected else v
    with _sc() as sc:
        result = (sc.parallelize(data, parts)
                  .reduce_by_key(lambda a, b: a + b, num_partitions=width)
                  .collect())
    assert dict(result) == expected
    assert len(result) == len(expected)  # no key split across buckets


@given(data=pairs, parts=partitions)
@SETTINGS
def test_group_by_key_partitions_all_values(data, parts):
    expected = {}
    for k, v in data:
        expected.setdefault(k, []).append(v)
    with _sc() as sc:
        grouped = sc.parallelize(data, parts).group_by_key().collect()
    assert {k: v for k, v in grouped} == expected
    assert len(grouped) == len(expected)


@given(data=ints, parts=partitions)
@SETTINGS
def test_distinct_agrees_with_set(data, parts):
    with _sc() as sc:
        result = sc.parallelize(data, parts).distinct().collect()
    assert sorted(result) == sorted(set(data))


@given(data=ints, parts=partitions, width=partitions)
@SETTINGS
def test_repartition_preserves_multiset(data, parts, width):
    with _sc() as sc:
        rdd = sc.parallelize(data, parts).repartition(width)
        assert sorted(rdd.collect()) == sorted(data)
        assert rdd.num_partitions == width


@given(data=pairs, parts=partitions)
@SETTINGS
def test_thread_backend_matches_serial(data, parts):
    def job(sc):
        return (sc.parallelize(data, parts)
                .map(lambda kv: (kv[0], kv[1] * 2))
                .reduce_by_key(lambda a, b: a + b)
                .collect())
    with _sc(backend="serial") as serial, \
            _sc(parallelism=3, backend="thread") as threaded:
        assert job(threaded) == job(serial)


# ----------------------------------------------------- shuffle fast path
@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
@given(data=pairs, parts=partitions, width=partitions)
@SETTINGS
def test_combined_shuffles_match_uncombined(backend, data, parts, width):
    """Map-side combining is invisible: identical output, any backend,
    for every stage kind that declares a combiner."""
    def jobs(sc):
        pairs_rdd = sc.parallelize(data, parts)
        return [
            pairs_rdd.reduce_by_key(lambda a, b: a + b,
                                    num_partitions=width).collect(),
            pairs_rdd.aggregate_by_key(
                0, lambda acc, v: acc + 1,
                lambda a, b: a + b, num_partitions=width).collect(),
            pairs_rdd.count_by_key_rdd(num_partitions=width).collect(),
            pairs_rdd.distinct(num_partitions=width).collect(),
        ]
    with _sc(parallelism=3, backend=backend) as on, \
            _sc(parallelism=3, backend=backend,
                shuffle_combine=False) as off:
        assert repr(jobs(on)) == repr(jobs(off))


@pytest.mark.parametrize("ascending", [True, False])
@given(data=ints, parts=partitions, width=partitions)
@SETTINGS
def test_range_sort_agrees_with_sorted(ascending, data, parts, width):
    """Range-partitioned sort == the old single-partition collapse ==
    Python's stable sorted()."""
    with _sc(parallelism=3) as sc:
        result = (sc.parallelize(data, parts)
                  .sort_by(lambda x: x % 7, ascending=ascending,
                           num_partitions=width)
                  .collect())
    assert result == sorted(data, key=lambda x: x % 7,
                            reverse=not ascending)


@given(data=pairs, parts=partitions)
@SETTINGS
def test_count_by_key_agrees_with_counter(data, parts):
    expected = {}
    for k, _v in data:
        expected[k] = expected.get(k, 0) + 1
    with _sc() as sc:
        assert sc.parallelize(data, parts).count_by_key() == expected


@given(data=ints, parts=partitions, n=st.integers(0, 70))
@SETTINGS
def test_take_agrees_with_prefix(data, parts, n):
    with _sc() as sc:
        assert sc.parallelize(data, parts).take(n) == data[:n]


# ------------------------------------------------------- columnar engine
#: the columnar matrix spawns two contexts per example; a leaner example
#: budget keeps the process-backend legs affordable
MATRIX_SETTINGS = settings(max_examples=12, deadline=None)


def _add(a, b):
    return a + b


def _repr_key(kv):
    return repr(kv[0])


def _shuffle_battery(sc, data, parts, width):
    """Every wide-stage kind in one pass, reprs compared verbatim.

    Module-level functions on purpose: the process-backend legs must
    genuinely ship the stages to pool workers, not fall back."""
    rdd = sc.parallelize(data, parts)
    return [
        rdd.reduce_by_key(_add, num_partitions=width).collect(),
        rdd.group_by_key(num_partitions=width).collect(),
        rdd.count_by_key_rdd(num_partitions=width).collect(),
        rdd.distinct(num_partitions=width).collect(),
        rdd.join(rdd, num_partitions=width).collect(),
        rdd.sort_by(_repr_key, num_partitions=width).collect(),
    ]


@pytest.mark.parametrize("backend,compress", [
    ("serial", False), ("serial", True),
    ("thread", False), ("thread", True),
    ("process", False), ("process", True),
])
@given(data=pairs, parts=partitions, width=partitions)
@MATRIX_SETTINGS
def test_columnar_matches_row_oracle(backend, compress, data, parts, width):
    """The columnar×backend×compression matrix: batch-at-a-time narrow
    ops, per-batch combiners and BatchBlock exchanges must be
    byte-identical to the row engine's serial oracle for arbitrary
    datasets — including cross-type-equal keys (1 == 1.0 == True)."""
    with _sc(parallelism=3) as oracle:
        expected = repr(_shuffle_battery(oracle, data, parts, width))
    with _sc(parallelism=3, backend=backend, engine_columnar=True,
             batch_rows=7, shuffle_compress=compress,
             shuffle_compress_threshold=1) as columnar:
        got = repr(_shuffle_battery(columnar, data, parts, width))
    assert got == expected


@given(data=pairs, parts=partitions, width=partitions)
@MATRIX_SETTINGS
def test_columnar_shm_matches_row_oracle(data, parts, width):
    """Shared-memory exchange (forced on, any backend) is invisible in
    results and leaves no segment behind."""
    from repro.engine.columnar import (SHM_BASE_PREFIX, list_segments,
                                       shm_available)
    if not shm_available():
        pytest.skip("no shared memory on this platform")
    with _sc(parallelism=3) as oracle:
        expected = repr(_shuffle_battery(oracle, data, parts, width))
    with _sc(parallelism=3, engine_columnar=True, batch_rows=7,
             shuffle_shm=True) as shm:
        got = repr(_shuffle_battery(shm, data, parts, width))
    assert got == expected
    assert list_segments(SHM_BASE_PREFIX) == []


def _retry_shuffle_job(sc, data, parts, width, flaky_map):
    return (sc.parallelize(data, parts)
            .map(flaky_map)
            .reduce_by_key(lambda a, b: a + b, num_partitions=width)
            .collect())


@given(data=st.lists(st.integers(0, 200), min_size=1, max_size=40),
       parts=partitions, width=partitions)
@SETTINGS
def test_combined_shuffle_survives_task_retries(data, parts, width):
    """Task re-execution must not double-count combined partials.

    One transient failure per example (any more could legitimately
    exhaust the retry budget when they land in the same partition);
    the failed map task re-runs, re-bucketing and re-combining every
    element it already processed."""
    import threading
    lock = threading.Lock()
    state = {"tripped": False}

    def flaky(x):
        with lock:
            if not state["tripped"]:
                state["tripped"] = True
                raise RuntimeError("transient")
        return (x % 5, x)

    with _sc(parallelism=3, backend="thread") as oracle:
        expected = _retry_shuffle_job(oracle, data, parts, width,
                                      lambda x: (x % 5, x))
    with SparkLiteContext(parallelism=3, backend="thread",
                          task_retries=2) as sc:
        got = _retry_shuffle_job(sc, data, parts, width, flaky)
    assert sorted(got) == sorted(expected)


@given(data=st.lists(st.integers(0, 200), min_size=1, max_size=40),
       parts=partitions, width=partitions)
@MATRIX_SETTINGS
def test_columnar_shuffle_survives_task_retries(data, parts, width):
    """Re-executed map tasks re-bucket and re-combine per batch; the
    per-batch partials must not double-count — and when the exchange is
    shm-backed, the retried attempt's orphaned segments must still be
    reclaimed at job end."""
    import threading

    from repro.engine.columnar import SHM_BASE_PREFIX, list_segments
    lock = threading.Lock()
    state = {"tripped": False}

    def flaky(x):
        with lock:
            if not state["tripped"]:
                state["tripped"] = True
                raise RuntimeError("transient")
        return (x % 5, x)

    with _sc(parallelism=3, backend="thread") as oracle:
        expected = _retry_shuffle_job(oracle, data, parts, width,
                                      lambda x: (x % 5, x))
    with SparkLiteContext(parallelism=3, backend="thread",
                          task_retries=2, engine_columnar=True,
                          batch_rows=7, shuffle_shm=True) as sc:
        got = _retry_shuffle_job(sc, data, parts, width, flaky)
    assert sorted(got) == sorted(expected)
    assert list_segments(SHM_BASE_PREFIX) == []


def test_columnar_outputs_identical_under_speculation():
    """A speculative backup may decode the same shm-backed block as the
    straggler it raced; both must see the data and the job must stay
    byte-identical to the serial row oracle."""
    import time

    from repro.engine.columnar import (SHM_BASE_PREFIX, list_segments,
                                       shm_available)
    seen = set()
    lock = __import__("threading").Lock()

    def slow_once(x):
        with lock:
            first = x not in seen
            seen.add(x)
        if x == 7 and first:
            time.sleep(0.3)
        return (x % 5, x)

    with _sc(parallelism=2) as oracle:
        expected = (oracle.parallelize(range(40), 8)
                    .map(lambda x: (x % 5, x))
                    .reduce_by_key(lambda a, b: a + b).collect())
    with SparkLiteContext(parallelism=4, backend="thread",
                          speculation=True, engine_columnar=True,
                          batch_rows=7,
                          shuffle_shm=shm_available() or None) as sc:
        got = (sc.parallelize(range(40), 8)
               .map(slow_once)
               .reduce_by_key(lambda a, b: a + b).collect())
    assert got == expected
    assert list_segments(SHM_BASE_PREFIX) == []
