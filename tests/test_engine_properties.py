"""Hypothesis property tests for RDD semantics.

For arbitrary small datasets and partition counts the engine must agree
with plain Python: ``collect()`` round-trips ``parallelize``,
``reduce_by_key`` agrees with a dict-based fold, ``count()``/``sum()``
agree with the builtins, and shuffles merge keys that Python considers
equal (including the nasty cross-type ``1 == 1.0 == True`` cases).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.engine.context import SparkLiteContext  # noqa: E402

SETTINGS = settings(max_examples=30, deadline=None)

ints = st.lists(st.integers(-1_000, 1_000), max_size=60)
partitions = st.integers(min_value=1, max_value=8)
#: keys spanning types with cross-type equality (1 == 1.0 == True)
keys = st.one_of(
    st.integers(-5, 5),
    st.booleans(),
    st.none(),
    st.sampled_from([0.0, 1.0, 2.5, -3.0]),
    st.text(alphabet="abcγ", max_size=3),
    st.tuples(st.integers(0, 3), st.text(alphabet="xy", max_size=2)),
)
pairs = st.lists(st.tuples(keys, st.integers(-50, 50)), max_size=50)


def _sc(parallelism=2, backend="serial"):
    return SparkLiteContext(parallelism=parallelism, backend=backend)


@given(data=ints, parts=partitions)
@SETTINGS
def test_parallelize_collect_roundtrip(data, parts):
    with _sc() as sc:
        assert sc.parallelize(data, parts).collect() == data


@given(data=ints, parts=partitions)
@SETTINGS
def test_count_and_sum_agree_with_builtins(data, parts):
    with _sc() as sc:
        rdd = sc.parallelize(data, parts)
        assert rdd.count() == len(data)
        assert rdd.sum() == sum(data)


@given(data=pairs, parts=partitions, width=partitions)
@SETTINGS
def test_reduce_by_key_agrees_with_dict_fold(data, parts, width):
    expected = {}
    for k, v in data:
        expected[k] = expected[k] + v if k in expected else v
    with _sc() as sc:
        result = (sc.parallelize(data, parts)
                  .reduce_by_key(lambda a, b: a + b, num_partitions=width)
                  .collect())
    assert dict(result) == expected
    assert len(result) == len(expected)  # no key split across buckets


@given(data=pairs, parts=partitions)
@SETTINGS
def test_group_by_key_partitions_all_values(data, parts):
    expected = {}
    for k, v in data:
        expected.setdefault(k, []).append(v)
    with _sc() as sc:
        grouped = sc.parallelize(data, parts).group_by_key().collect()
    assert {k: v for k, v in grouped} == expected
    assert len(grouped) == len(expected)


@given(data=ints, parts=partitions)
@SETTINGS
def test_distinct_agrees_with_set(data, parts):
    with _sc() as sc:
        result = sc.parallelize(data, parts).distinct().collect()
    assert sorted(result) == sorted(set(data))


@given(data=ints, parts=partitions, width=partitions)
@SETTINGS
def test_repartition_preserves_multiset(data, parts, width):
    with _sc() as sc:
        rdd = sc.parallelize(data, parts).repartition(width)
        assert sorted(rdd.collect()) == sorted(data)
        assert rdd.num_partitions == width


@given(data=pairs, parts=partitions)
@SETTINGS
def test_thread_backend_matches_serial(data, parts):
    def job(sc):
        return (sc.parallelize(data, parts)
                .map(lambda kv: (kv[0], kv[1] * 2))
                .reduce_by_key(lambda a, b: a + b)
                .collect())
    with _sc(backend="serial") as serial, \
            _sc(parallelism=3, backend="thread") as threaded:
        assert job(threaded) == job(serial)
