"""Continuous-ingest scheduler: beats, kills, resume, exactly-once."""

import pytest

from repro.core.platform import ExploratoryPlatform, PlatformConfig
from repro.crawl.scheduler import CRASH_STATES
from repro.net.faults import FaultSchedule
from repro.util.errors import IngestError, IngestKilled
from repro.world.config import WorldConfig
from repro.world.generator import generate_world

SCALE = 0.002
DAYS = 3


def _platform(seed=7, **cfg_kw):
    config = PlatformConfig(engine_backend="serial", **cfg_kw)
    world = generate_world(WorldConfig(scale=SCALE, seed=seed))
    return ExploratoryPlatform(world, config=config)


def _run_to_completion(platform, kill=None, days=DAYS):
    """Run the ingest tier to ``days``, resuming across injected kills.

    Returns (final scheduler, report, number of kills survived).
    """
    scheduler = platform.ingest_pipeline()
    if kill is not None:
        scheduler.faults = FaultSchedule.none()
        scheduler.faults.force_ingest_kill(*kill)
    kills = 0
    while True:
        try:
            report = scheduler.run_until_day(days)
            return scheduler, report, kills
        except IngestKilled:
            kills += 1
            # the dead scheduler's memory is gone; recovery must come
            # from the ledger + datasets alone
            scheduler = platform.ingest_pipeline()


def _fingerprints(scheduler):
    return {name: ds.canonical_bytes()
            for name, ds in scheduler.dataset_map().items()}


class TestHappyPath:
    def test_days_commit_in_order_and_datasets_land(self):
        platform = _platform()
        try:
            scheduler, report, _ = _run_to_completion(platform)
            assert report.day == DAYS
            assert report.stats.units_committed == DAYS * 5
            assert scheduler.ledger.pending_units() == []
            assert report.dataset_keys["panels"] > 0
            assert report.dataset_keys["startups"] > 0
            assert report.dataset_keys["follow_edges"] > 0
            # derived edge sets mirror their sources exactly
            assert (report.dataset_keys["derived/follow_edges"]
                    == report.dataset_keys["follow_edges"])
            assert (report.dataset_keys["derived/investment_edges"]
                    == report.dataset_keys["investments"])
            assert scheduler.ledger.live_leases() == []
            assert scheduler.ledger.expired_leases() == []
        finally:
            platform.close()

    def test_panel_records_match_batch_snapshot_schema(self):
        platform = _platform()
        try:
            scheduler, _, _ = _run_to_completion(platform)
            record = scheduler.panels.read()[0]
            assert {"day", "startup_id", "currently_raising",
                    "follower_count"} <= set(record)
        finally:
            platform.close()

    def test_drain_stops_between_units(self):
        platform = _platform()
        try:
            scheduler = platform.ingest_pipeline()
            scheduler.request_drain()
            report = scheduler.run(beats=5)
            assert report.drained
            assert report.stats.beats == 0  # drained before the first beat
            assert scheduler.ledger.pending_units() == []
        finally:
            platform.close()

    def test_incremental_scan_is_bounded(self):
        """Each source record is engine-scanned at most once, ever —
        a daily full rebuild would scan ~days/2 times as much."""
        platform = _platform()
        try:
            scheduler, report, _ = _run_to_completion(platform)
            raw = sum(len(scheduler.dfs.read_text(path).splitlines())
                      for ds in (scheduler.investments,
                                 scheduler.follow_edges)
                      for path in ds.live_files())
            assert report.derived_records_scanned == raw
            # a daily full rebuild re-reads everything every day
            assert report.derived_records_scanned < DAYS * max(raw, 1)
        finally:
            platform.close()


def _kill_matrix():
    # mid-land only exists for units that land datasets
    for kind in ("advance", "discover"):
        for state in CRASH_STATES:
            if state != "mid-land":
                yield f"day-0002:{kind}", state
    for kind in ("snapshot", "frontier", "derived"):
        for state in CRASH_STATES:
            yield f"day-0002:{kind}", state


@pytest.mark.chaos
class TestKillResumeDrill:
    """SIGKILL at every ledger state of every unit kind; the resumed
    pipeline must converge to the uninterrupted run, byte for byte."""

    @pytest.fixture(scope="class")
    def baseline(self):
        platform = _platform()
        try:
            scheduler, report, kills = _run_to_completion(platform)
            assert kills == 0
            yield (_fingerprints(scheduler),
                   {n: ds.duplicate_key_groups()
                    for n, ds in scheduler.dataset_map().items()})
        finally:
            platform.close()

    @pytest.mark.parametrize("unit,state", list(_kill_matrix()))
    def test_kill_resume_byte_identical(self, unit, state, baseline):
        base_bytes, base_dups = baseline
        platform = _platform()
        try:
            scheduler, report, kills = _run_to_completion(
                platform, kill=(unit, state))
            assert kills == 1, f"forced kill at {unit}@{state} never fired"
            assert _fingerprints(scheduler) == base_bytes
            # a redelivered unit never lands twice: no *new* duplicate
            # key groups versus the uninterrupted run
            for name, ds in scheduler.dataset_map().items():
                assert ds.duplicate_key_groups() == base_dups[name], name
            # and every lease was reclaimed or released
            assert scheduler.ledger.live_leases() == []
            assert scheduler.ledger.expired_leases() == []
            assert scheduler.ledger.pending_units() == []
        finally:
            platform.close()


@pytest.mark.chaos
class TestChaosProfiles:
    def test_lease_expiry_storm_still_converges(self):
        """Heartbeats keep getting lost; fenced commits and takeovers
        pile up, but the eventual datasets match the calm run."""
        calm = _platform()
        stormy = _platform()
        try:
            calm_sched, _, _ = _run_to_completion(calm)
            scheduler = stormy.ingest_pipeline()
            scheduler.faults = FaultSchedule.ingest_chaos(
                intensity=4.0, seed=3)
            # keep only lease-expiry storms: kills are the other test
            scheduler.faults.ingest_specs = [
                s for s in scheduler.faults.ingest_specs
                if s.kind == "lease_expiry"]
            kills = 0
            while True:
                try:
                    scheduler.run_until_day(DAYS)
                    break
                except IngestKilled:  # pragma: no cover - kills filtered
                    kills += 1
                    scheduler = stormy.ingest_pipeline()
            assert scheduler.stats.leases_lost > 0
            assert _fingerprints(scheduler) == _fingerprints(calm_sched)
        finally:
            calm.close()
            stormy.close()

    def test_probabilistic_kill_storm_converges(self):
        """chaos-ingest profile: seeded kills keep tearing the scheduler
        down; every incarnation resumes from the ledger and the tier
        still reaches the target day with clean datasets."""
        calm = _platform()
        chaotic = _platform()
        try:
            calm_sched, _, _ = _run_to_completion(calm)
            faults = FaultSchedule.ingest_chaos(intensity=1.0, seed=5)
            kills = 0
            scheduler = chaotic.ingest_pipeline()
            scheduler.faults = faults
            while True:
                try:
                    scheduler.run_until_day(DAYS)
                    break
                except IngestKilled:
                    kills += 1
                    assert kills < 500, "kill storm never converged"
                    scheduler = chaotic.ingest_pipeline()
                    scheduler.faults = faults
            assert kills > 0  # the profile actually bit
            assert _fingerprints(scheduler) == _fingerprints(calm_sched)
            assert scheduler.ledger.pending_units() == []
        finally:
            calm.close()
            chaotic.close()


class TestWatchdog:
    def test_poison_unit_escalates_instead_of_looping(self):
        platform = _platform()
        try:
            scheduler = platform.ingest_pipeline()
            scheduler.max_unit_attempts = 3
            scheduler.faults = FaultSchedule.none()
            # arm enough kills to exhaust the attempt budget
            for _ in range(10):
                scheduler.faults.force_ingest_kill(
                    "day-0001:snapshot", "pre-commit")
            with pytest.raises(IngestError) as failure:
                for _ in range(40):
                    try:
                        scheduler.run_until_day(1, max_beats=50)
                        break
                    except IngestKilled:
                        faults = scheduler.faults
                        scheduler = platform.ingest_pipeline()
                        scheduler.max_unit_attempts = 3
                        scheduler.faults = faults
                else:  # pragma: no cover - loop must raise first
                    pytest.fail("neither converged nor escalated")
            assert not isinstance(failure.value, IngestKilled)
            assert "redelivered" in str(failure.value)
        finally:
            platform.close()


class TestPlatformWiring:
    def test_chaos_ingest_profile_reaches_scheduler(self):
        platform = _platform(faults=FaultSchedule.ingest_chaos(
            intensity=0.0, seed=1))
        try:
            scheduler = platform.ingest_pipeline()
            assert scheduler.faults is platform.config.faults
        finally:
            platform.close()

    def test_plain_fault_plan_disables_ingest_faults(self):
        platform = _platform()
        try:
            assert platform.ingest_pipeline().faults is None
        finally:
            platform.close()

    def test_dynamics_shared_across_incarnations(self):
        platform = _platform()
        try:
            first = platform.ingest_pipeline()
            second = platform.ingest_pipeline()
            assert first.dynamics is second.dynamics
        finally:
            platform.close()
