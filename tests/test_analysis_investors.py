"""Tests for the Figure 3 investor-activity analysis."""

import pytest


@pytest.fixture(scope="module")
def activity(crawled_platform):
    return crawled_platform.run_plugin("investor_activity")


class TestDistribution:
    def test_long_tail(self, activity):
        assert activity.median_investments == 1.0
        assert activity.mean_investments > activity.median_investments
        assert activity.max_investments > 5 * activity.mean_investments

    def test_cdf_consistency(self, activity):
        cdf = activity.investments_cdf
        assert cdf(0) == 0.0                     # nobody has 0 (omitted)
        assert cdf(activity.max_investments) == 1.0
        assert cdf.mean == pytest.approx(activity.mean_investments)

    def test_matches_graph(self, activity, investor_graph):
        assert activity.investments_cdf.n == investor_graph.num_investors

    def test_follows_exceed_investments(self, activity):
        """Investors follow far more companies than they invest in (§3)."""
        assert activity.mean_follows_per_investor \
            > 2 * activity.mean_investments

    def test_render_smoke(self, activity):
        assert "investments per investor" in activity.render_cdf()
