"""Hysteresis tests for the serve-tier HealthMonitor state machine."""

import pytest

from repro.serve.health import (EVENT_DEGRADED, EVENT_OK, EVENT_SHED,
                                STATE_DEGRADED, STATE_HEALTHY,
                                STATE_SHEDDING, HealthMonitor)
from repro.serve.metrics import ServeMetrics


def _feed(monitor, events, start=0.0):
    t = start
    for event in events:
        monitor.record(event, t)
        t += 0.01
    return t


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ValueError):
            HealthMonitor(window=0)

    def test_thresholds_must_nest(self):
        with pytest.raises(ValueError):
            HealthMonitor(shed_enter=0.05, shed_exit=0.10)
        with pytest.raises(ValueError):
            HealthMonitor(degrade_enter=0.01, degrade_exit=0.05)

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            HealthMonitor().record("gremlins", 0.0)


class TestMinEventsEdge:
    """No classification below ``min_events``, immediate at the edge."""

    def test_stays_healthy_below_min_events(self):
        monitor = HealthMonitor(window=100, min_events=20)
        _feed(monitor, [EVENT_SHED] * 19)
        assert monitor.state == STATE_HEALTHY
        assert monitor.window_fill == 19

    def test_transitions_at_exactly_min_events(self):
        monitor = HealthMonitor(window=100, min_events=20)
        _feed(monitor, [EVENT_SHED] * 19)
        assert monitor.record(EVENT_SHED, 0.2) == STATE_SHEDDING

    def test_min_events_floor_is_one(self):
        monitor = HealthMonitor(window=10, min_events=0)
        assert monitor.min_events == 1
        assert monitor.record(EVENT_SHED, 0.0) == STATE_SHEDDING


class TestHysteresis:
    def test_full_round_trip(self):
        """healthy -> degraded -> shedding -> healthy, with hysteresis."""
        monitor = HealthMonitor(window=20, min_events=10)
        # 10% degraded answers >= degrade_enter (5%): degraded
        _feed(monitor, [EVENT_OK] * 9 + [EVENT_DEGRADED] * 2)
        assert monitor.state == STATE_DEGRADED
        # rejections climb past shed_enter (10%): shedding
        _feed(monitor, [EVENT_SHED] * 3)
        assert monitor.state == STATE_SHEDDING
        # a clean run of answers flushes the window: back to healthy
        _feed(monitor, [EVENT_OK] * 40)
        assert monitor.state == STATE_HEALTHY

    def test_no_flap_between_exit_and_enter(self):
        """Inside the hysteresis band the state holds steady."""
        monitor = HealthMonitor(window=50, min_events=10,
                                degrade_enter=0.10, degrade_exit=0.02)
        _feed(monitor, [EVENT_DEGRADED] * 5 + [EVENT_OK] * 45)
        assert monitor.state == STATE_DEGRADED
        # two more oks push two degraded events out of the window:
        # 3/50 = 6% sits between exit (2%) and enter (10%) — the
        # monitor must not bounce back to healthy inside the band
        _feed(monitor, [EVENT_OK] * 2)
        assert monitor.state == STATE_DEGRADED
        _feed(monitor, [EVENT_OK] * 5)          # window now all-ok
        assert monitor.state == STATE_HEALTHY

    def test_shedding_exit_requires_near_zero_sheds(self):
        monitor = HealthMonitor(window=20, min_events=10,
                                shed_enter=0.10, shed_exit=0.02)
        _feed(monitor, [EVENT_SHED] * 4 + [EVENT_OK] * 16)
        assert monitor.state == STATE_SHEDDING
        # three oks leave one shed in the window: 1/20 = 5% is still
        # above the 2% exit bar, so the state holds
        _feed(monitor, [EVENT_OK] * 3)
        assert monitor.state == STATE_SHEDDING
        _feed(monitor, [EVENT_OK] * 1)          # last shed leaves window
        assert monitor.state == STATE_HEALTHY

    def test_shedding_can_exit_into_degraded(self):
        monitor = HealthMonitor(window=20, min_events=10)
        _feed(monitor, [EVENT_SHED] * 4 + [EVENT_OK] * 16)
        assert monitor.state == STATE_SHEDDING
        # sheds age out but degraded answers remain prominent
        _feed(monitor, [EVENT_DEGRADED] * 20)
        assert monitor.state == STATE_DEGRADED


class TestMetricsExport:
    def test_attach_metrics_records_transitions(self):
        metrics = ServeMetrics()
        monitor = HealthMonitor(window=20, min_events=10)
        monitor.attach_metrics(metrics)
        _feed(monitor, [EVENT_SHED] * 10)
        _feed(monitor, [EVENT_OK] * 40, start=1.0)
        states = [(old, new) for _, old, new
                  in metrics.health_transitions]
        assert (STATE_HEALTHY, STATE_SHEDDING) in states
        assert states[-1][1] == STATE_HEALTHY

    def test_no_metrics_attached_is_fine(self):
        monitor = HealthMonitor(window=20, min_events=5)
        _feed(monitor, [EVENT_SHED] * 10)
        assert monitor.state == STATE_SHEDDING
