"""Tests for community lifecycle tracking over time."""

import pytest

from repro.analysis.dynamic_communities import (LifecycleEvent,
                                                default_coda_detector,
                                                track_communities,
                                                _jaccard)
from repro.world.entities import Investment


def _edges_to_investments(edges, day):
    return [Investment(investor_id=u, company_id=c, day=day)
            for u, c in edges]


def _block(investors, companies):
    return [(u, c) for u in investors for c in companies]


def _set_detector(min_shared: int = 2):
    """A deterministic toy detector: connected co-investment groups."""
    def detect(graph):
        from repro.community.labelprop import label_propagation
        return label_propagation(graph, seed=1, min_overlap=min_shared)
    return detect


class TestMechanics:
    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            track_communities([], 3, _set_detector())
        inv = _edges_to_investments([(1, 10)], day=0)
        with pytest.raises(ValueError):
            track_communities(inv, 0, _set_detector())

    def test_snapshots_are_cumulative(self):
        investments = (_edges_to_investments(_block(range(4), range(100, 104)), 0)
                       + _edges_to_investments(_block(range(20, 24),
                                                      range(200, 204)), 10))
        report = track_communities(investments, 2, _set_detector())
        assert report.snapshots[0].num_edges \
            <= report.snapshots[1].num_edges
        assert report.snapshots[1].num_edges == len(investments)

    def test_jaccard(self):
        assert _jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert _jaccard(set(), set()) == 0.0


class TestLifecycles:
    def test_birth_of_new_community(self):
        early = _edges_to_investments(_block(range(4), range(100, 104)), 0)
        late = _edges_to_investments(_block(range(20, 24),
                                            range(200, 204)), 10)
        report = track_communities(early + late, 2, _set_detector())
        kinds = report.counts()
        assert kinds.get("born", 0) >= 1
        assert kinds.get("continued", 0) >= 1

    def test_stable_community_continues(self):
        block = _block(range(5), range(100, 105))
        investments = (_edges_to_investments(block, 0)
                       + _edges_to_investments([(0, 300)], 10))
        report = track_communities(investments, 2, _set_detector())
        continued = [e for e in report.events if e.kind == "continued"]
        assert continued
        assert all(e.jaccard > 0.5 for e in continued)

    def test_dissolution_recorded_on_detector_loss(self):
        """If the detector stops returning a community, it dissolves."""
        calls = {"n": 0}

        def flaky_detector(graph):
            calls["n"] += 1
            if calls["n"] == 1:
                return {0: {1, 2, 3}}
            return {}
        investments = _edges_to_investments(_block(range(4), range(100, 103)), 0) \
            + _edges_to_investments([(9, 999)], 10)
        report = track_communities(investments, 2, flaky_detector)
        assert report.counts().get("dissolved", 0) == 1

    def test_merge_detected(self):
        def detector(graph):
            if graph.num_edges < 30:
                return {0: {1, 2, 3}, 1: {4, 5, 6}}
            return {0: {1, 2, 3, 4, 5, 6}}
        early = _edges_to_investments(
            _block(range(1, 7), range(100, 104)), 0)
        late = _edges_to_investments(
            _block(range(1, 7), range(104, 110)), 10)
        report = track_communities(early + late, 2, detector)
        merged = [e for e in report.events if e.kind == "merged"]
        assert len(merged) == 1
        assert merged[0].previous_ids == [0, 1]

    def test_split_detected(self):
        def detector(graph):
            if graph.num_edges < 30:
                return {0: {1, 2, 3, 4, 5, 6}}
            return {0: {1, 2, 3}, 1: {4, 5, 6}}
        early = _edges_to_investments(
            _block(range(1, 7), range(100, 104)), 0)
        late = _edges_to_investments(
            _block(range(1, 7), range(104, 110)), 10)
        report = track_communities(early + late, 2, detector)
        assert report.counts().get("split", 0) >= 1


class TestWithCoda:
    def test_world_replay(self, tiny_world):
        detector = default_coda_detector(
            num_communities=tiny_world.config.num_communities,
            max_iters=12, seed=2)
        report = track_communities(tiny_world.investments, 3, detector)
        assert len(report.snapshots) == 3
        # Final window sees the whole graph.
        total_edges = len({(i.investor_id, i.company_id)
                           for i in tiny_world.investments})
        assert report.snapshots[-1].num_edges == total_edges
        # Communities exist by the end and events were classified.
        assert report.snapshots[-1].communities
        assert report.events
        valid = {"born", "continued", "merged", "split", "dissolved"}
        assert {e.kind for e in report.events} <= valid
