"""Property-based tests (hypothesis) on core data structures and invariants."""

import json

from hypothesis import given, settings, strategies as st

from repro.dfs.filesystem import MiniDfs
from repro.engine.context import SparkLiteContext
from repro.graph.bipartite import BipartiteGraph
from repro.metrics.bounds import dkw_epsilon
from repro.metrics.ecdf import EmpiricalCDF
from repro.metrics.shared import (average_shared_investment_size,
                                  shared_investment_size,
                                  shared_investor_percentage)
from repro.net.http import paginate
from repro.sources.base import FixedWindowLimiter
from repro.util.clock import SimClock
from repro.util.rng import RngStream, derive_seed

# ---------------------------------------------------------------- strategies

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(100, 140)),
    max_size=200)

small_sets = st.sets(st.integers(0, 50), max_size=20)

float_samples = st.lists(
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6),
    min_size=1, max_size=200)


# -------------------------------------------------------------------- ECDF

@given(float_samples)
def test_ecdf_bounds_and_monotonicity(values):
    cdf = EmpiricalCDF(values)
    xs = sorted(values)
    evaluated = [cdf(x) for x in xs]
    assert all(0.0 <= v <= 1.0 for v in evaluated)
    assert evaluated == sorted(evaluated)
    assert cdf(max(values)) == 1.0


@given(float_samples)
def test_ecdf_series_sums_to_one(values):
    cdf = EmpiricalCDF(values)
    _xs, ys = cdf.series()
    assert abs(ys[-1] - 1.0) < 1e-9


@given(st.integers(1, 10**7), st.floats(0.5, 0.999))
def test_dkw_epsilon_positive_and_decreasing(n, confidence):
    eps = dkw_epsilon(n, confidence)
    assert eps > 0
    assert dkw_epsilon(n * 4, confidence) < eps


# ----------------------------------------------------------- shared metrics

@given(small_sets, small_sets)
def test_shared_size_bounded_by_smaller_portfolio(a, b):
    size = shared_investment_size(a, b)
    assert 0 <= size <= min(len(a), len(b))
    assert size == shared_investment_size(b, a)  # symmetric


@given(st.dictionaries(st.integers(0, 8), small_sets, max_size=9))
def test_average_shared_size_nonnegative(portfolios):
    members = sorted(portfolios)
    avg = average_shared_investment_size(members, portfolios)
    assert avg >= 0.0
    if members:
        caps = [len(portfolios[m]) for m in members]
        assert avg <= max(caps, default=0)


@given(st.dictionaries(st.integers(0, 8), small_sets, min_size=1,
                       max_size=9),
       st.integers(1, 4))
def test_shared_percentage_in_range_and_antitone_in_k(portfolios, k):
    members = sorted(portfolios)
    pct_k = shared_investor_percentage(members, portfolios, k=k)
    pct_k1 = shared_investor_percentage(members, portfolios, k=k + 1)
    assert 0.0 <= pct_k <= 100.0
    assert pct_k1 <= pct_k  # requiring more investors can't find more


# ------------------------------------------------------------------- graph

@given(edge_lists)
def test_bipartite_graph_degree_sums_equal_edges(edges):
    graph = BipartiteGraph(edges)
    assert graph.out_degrees().sum() == graph.num_edges
    assert graph.in_degrees().sum() == graph.num_edges


@given(edge_lists, st.integers(1, 5))
def test_filter_investors_keeps_only_heavy(edges, threshold):
    graph = BipartiteGraph(edges)
    filtered = graph.filter_investors(threshold)
    assert all(filtered.out_degree(u) >= threshold
               for u in filtered.investors)
    assert filtered.num_edges <= graph.num_edges


@given(edge_lists)
def test_projection_weights_bounded_by_min_degree(edges):
    graph = BipartiteGraph(edges)
    for (a, b), weight in graph.investor_projection().items():
        assert weight <= min(graph.out_degree(a), graph.out_degree(b))


# ------------------------------------------------------------------ engine

@given(st.lists(st.integers(-1000, 1000), max_size=300),
       st.integers(1, 6))
def test_engine_wordcount_matches_python(data, partitions):
    with SparkLiteContext(parallelism=2) as sc:
        result = (sc.parallelize(data, partitions)
                  .map(lambda x: (x % 5, 1))
                  .reduce_by_key(lambda a, b: a + b)
                  .collect_as_map())
    expected = {}
    for x in data:
        expected[x % 5] = expected.get(x % 5, 0) + 1
    assert result == expected


@given(st.lists(st.integers(), max_size=200), st.integers(1, 5))
def test_engine_distinct_matches_set(data, partitions):
    with SparkLiteContext(parallelism=2) as sc:
        result = sc.parallelize(data, partitions).distinct().collect()
    assert sorted(result) == sorted(set(data))


# --------------------------------------------------------------------- DFS

@given(st.binary(max_size=5000), st.integers(1, 64))
def test_dfs_roundtrip_any_payload(payload, block_size):
    dfs = MiniDfs(num_datanodes=3, block_size=block_size, seed=2)
    dfs.create("/f", payload)
    assert dfs.read("/f") == payload


@given(st.lists(st.dictionaries(st.text(max_size=5),
                                st.integers(), max_size=4),
                max_size=40),
       st.integers(1, 6))
def test_jsonlines_roundtrip(records, partitions):
    from repro.dfs.jsonlines import read_json_dataset, write_json_dataset
    dfs = MiniDfs(num_datanodes=2)
    write_json_dataset(dfs, "/d", records, partitions=partitions)
    assert read_json_dataset(dfs, "/d") == records


# ------------------------------------------------------------- rate limiter

@given(st.integers(1, 50), st.floats(1.0, 1000.0),
       st.integers(1, 120))
def test_fixed_window_never_exceeds_budget(limit, window, requests):
    clock = SimClock()
    limiter = FixedWindowLimiter(limit, window, clock)
    allowed = sum(limiter.check("k") is None for _ in range(requests))
    assert allowed == min(limit, requests)


@given(st.integers(1, 20), st.floats(1.0, 100.0))
def test_fixed_window_resets_after_window(limit, window):
    clock = SimClock()
    limiter = FixedWindowLimiter(limit, window, clock)
    for _ in range(limit):
        assert limiter.check("k") is None
    assert limiter.check("k") is not None
    clock.sleep(window)
    assert limiter.check("k") is None


# ------------------------------------------------------------------- misc

@given(st.integers(0, 2**63), st.text(max_size=30))
def test_derive_seed_stable_and_bounded(seed, label):
    a = derive_seed(seed, label)
    assert a == derive_seed(seed, label)
    assert 0 <= a < 2**64


@given(st.lists(st.integers(), max_size=100),
       st.integers(1, 10), st.integers(1, 10))
def test_paginate_partitions_exactly(items, per_page, _unused):
    page = 1
    collected = []
    while True:
        chunk, last = paginate(items, page, per_page)
        collected.extend(chunk)
        if page >= last:
            break
        page += 1
    assert collected == items


@given(st.floats(2.0, 3.0), st.integers(2, 500))
def test_zipf_bounded_within_range(alpha, max_value):
    draws = RngStream(3).zipf_bounded(alpha, max_value, size=50)
    assert draws.min() >= 1
    assert draws.max() <= max_value
