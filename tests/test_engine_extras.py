"""Tests for the extra RDD/DataFrame operations."""

import pytest

from repro.engine.context import SparkLiteContext
from repro.engine.dataframe import DataFrame
from repro.util.errors import EngineError


@pytest.fixture(scope="module")
def sc():
    context = SparkLiteContext(parallelism=3)
    yield context
    context.stop()


class TestTakeOrdered:
    def test_smallest(self, sc):
        assert sc.parallelize([5, 1, 9, 3]).take_ordered(2) == [1, 3]

    def test_with_key(self, sc):
        result = sc.parallelize(["bbb", "a", "cc"]).take_ordered(
            2, key=len)
        assert result == ["a", "cc"]


class TestZipWithIndex:
    def test_global_positions(self, sc):
        pairs = sc.parallelize(list("abcde"), 3).zip_with_index().collect()
        assert pairs == [("a", 0), ("b", 1), ("c", 2), ("d", 3), ("e", 4)]

    def test_empty(self, sc):
        assert sc.parallelize([]).zip_with_index().collect() == []


class TestStats:
    def test_basic(self, sc):
        stats = sc.parallelize([1, 2, 3, 4], 2).stats()
        assert stats["count"] == 4
        assert stats["mean"] == 2.5
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["stdev"] == pytest.approx(1.1180, abs=1e-3)

    def test_empty(self, sc):
        assert sc.parallelize([]).stats()["count"] == 0

    def test_matches_numpy(self, sc):
        import numpy as np
        data = list(np.random.default_rng(0).normal(size=500))
        stats = sc.parallelize(data, 5).stats()
        assert stats["mean"] == pytest.approx(np.mean(data))
        assert stats["stdev"] == pytest.approx(np.std(data), abs=1e-9)


class TestHistogram:
    def test_bucket_counts(self, sc):
        edges, counts = sc.parallelize([0, 1, 2, 3, 4, 5]).histogram(5)
        assert len(edges) == 6
        assert sum(counts) == 6

    def test_constant_values(self, sc):
        edges, counts = sc.parallelize([7, 7, 7]).histogram(4)
        assert counts == [3]

    def test_empty(self, sc):
        assert sc.parallelize([]).histogram(3) == ([], [])

    def test_invalid_buckets(self, sc):
        with pytest.raises(EngineError):
            sc.parallelize([1]).histogram(0)


class TestDataFrameExtras:
    @pytest.fixture()
    def df(self, sc):
        return DataFrame.from_records(sc, [
            {"g": "a", "v": 1}, {"g": "b", "v": 5}, {"g": "a", "v": 3}])

    def test_describe(self, df):
        stats = df.describe("v")
        assert stats["count"] == 3
        assert stats["mean"] == 3.0

    def test_distinct_values(self, df):
        assert df.distinct_values("g") == ["a", "b"]

    def test_distinct_handles_none(self, sc):
        df = DataFrame.from_records(sc, [{"x": None}, {"x": 2}, {"x": None}])
        assert df.distinct_values("x") == [2, None]
