"""Tests for the stale-while-revalidate cache and the health FSM."""

import pytest

from repro.serve.degrade import ResultCache
from repro.serve.health import (EVENT_DEGRADED, EVENT_OK, EVENT_SHED,
                                STATE_DEGRADED, STATE_HEALTHY,
                                STATE_SHEDDING, HealthMonitor)
from repro.serve.metrics import ServeMetrics

KEY = ("company", 7, 1)


class TestResultCache:
    def test_fresh_hit_within_ttl(self):
        cache = ResultCache(fresh_ttl_s=1.0, stale_ttl_s=30.0)
        cache.store(KEY, {"name": "acme"}, now=10.0)
        answer = cache.lookup_fresh(KEY, now=10.5)
        assert answer is not None and not answer.stale
        assert answer.value == {"name": "acme"}
        assert cache.hits_fresh == 1

    def test_fresh_lookup_expires_into_stale(self):
        cache = ResultCache(fresh_ttl_s=1.0, stale_ttl_s=30.0)
        cache.store(KEY, "v", now=0.0)
        assert cache.lookup_fresh(KEY, now=5.0) is None
        answer = cache.lookup_stale(KEY, now=5.0)
        assert answer is not None and answer.stale
        assert answer.age_s == pytest.approx(5.0)

    def test_stale_ttl_is_the_end(self):
        cache = ResultCache(fresh_ttl_s=1.0, stale_ttl_s=10.0)
        cache.store(KEY, "v", now=0.0)
        assert cache.lookup_stale(KEY, now=11.0) is None
        assert len(cache) == 0  # expired entries are dropped

    def test_lru_bound(self):
        cache = ResultCache(fresh_ttl_s=1.0, stale_ttl_s=2.0, max_entries=2)
        cache.store(("k", 1, 1), 1, now=0.0)
        cache.store(("k", 2, 1), 2, now=0.0)
        cache.lookup_fresh(("k", 1, 1), now=0.1)  # refresh 1's position
        cache.store(("k", 3, 1), 3, now=0.2)      # evicts 2
        assert cache.lookup_fresh(("k", 2, 1), now=0.3) is None
        assert cache.lookup_fresh(("k", 1, 1), now=0.3).value == 1
        assert cache.evictions == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(fresh_ttl_s=5.0, stale_ttl_s=1.0)
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestHealthMonitor:
    def _monitor(self, **kwargs):
        kwargs.setdefault("window", 20)
        kwargs.setdefault("min_events", 10)
        monitor = HealthMonitor(**kwargs)
        metrics = ServeMetrics()
        monitor.attach_metrics(metrics)
        return monitor, metrics

    def test_starts_healthy_and_stays_on_ok(self):
        monitor, metrics = self._monitor()
        for i in range(30):
            assert monitor.record(EVENT_OK, float(i)) == STATE_HEALTHY
        assert metrics.health_transitions == []

    def test_shedding_on_rejections(self):
        monitor, metrics = self._monitor()
        for i in range(10):
            monitor.record(EVENT_OK, float(i))
        for i in range(10):
            monitor.record(EVENT_SHED, 10.0 + i)
        assert monitor.state == STATE_SHEDDING
        assert metrics.health_transitions[-1][2] == STATE_SHEDDING

    def test_degraded_on_fallback_answers(self):
        monitor, _ = self._monitor()
        events = [EVENT_OK] * 15 + [EVENT_DEGRADED] * 5
        for i, event in enumerate(events):
            monitor.record(event, float(i))
        assert monitor.state == STATE_DEGRADED

    def test_hysteresis_recovery_needs_clean_window(self):
        monitor, metrics = self._monitor()
        for i in range(20):
            monitor.record(EVENT_SHED, float(i))
        assert monitor.state == STATE_SHEDDING
        # a few OK events are not enough: the window still shows sheds
        for i in range(5):
            monitor.record(EVENT_OK, 20.0 + i)
        assert monitor.state == STATE_SHEDDING
        # a full clean window recovers
        for i in range(20):
            monitor.record(EVENT_OK, 30.0 + i)
        assert monitor.state == STATE_HEALTHY
        states = [t[2] for t in metrics.health_transitions]
        assert states == [STATE_SHEDDING, STATE_HEALTHY]

    def test_no_flapping_below_min_events(self):
        monitor, _ = self._monitor(min_events=10)
        for i in range(5):
            monitor.record(EVENT_SHED, float(i))
        assert monitor.state == STATE_HEALTHY  # not enough evidence yet

    def test_unknown_event_raises(self):
        monitor, _ = self._monitor()
        with pytest.raises(ValueError):
            monitor.record("on-fire", 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthMonitor(window=0)
        with pytest.raises(ValueError):
            HealthMonitor(shed_enter=0.1, shed_exit=0.5)
