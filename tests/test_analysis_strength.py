"""Tests for the §5 community-strength study (Figures 4/5/7)."""

import numpy as np
import pytest

from repro.analysis.strength import community_figure_svg, run_community_study


@pytest.fixture(scope="module")
def study(crawled_platform, investor_graph):
    return run_community_study(
        investor_graph,
        num_communities=crawled_platform.world.config.num_communities,
        global_pairs=20_000, seed=3, coda_iters=30)


class TestStudyContents:
    def test_communities_found(self, study):
        assert study.coda.num_communities >= 3

    def test_strengths_cover_all_communities(self, study):
        assert {s.community_id for s in study.strengths} \
            == set(study.coda.investor_communities)

    def test_strong_cdfs_limited(self, study):
        assert 1 <= len(study.strong_cdfs) <= 3

    def test_global_sample_size(self, study):
        assert study.global_pairs_sampled == 20_000

    def test_dkw_bound_value(self, study):
        assert study.dkw_bound == pytest.approx(
            np.sqrt(np.log(200) / (2 * 20_000)), rel=1e-6)


class TestPaperClaims:
    def test_strong_communities_beat_global_sample(self, study):
        """Figure 4: strong-community CDFs dominate the global CDF."""
        for cdf in study.strong_cdfs.values():
            assert cdf.mean > study.global_cdf.mean

    def test_global_pairs_rarely_overlap(self, study):
        assert study.global_cdf.mean < 0.5

    def test_communities_beat_randomized_control(self, study):
        """Figure 5: detected avg >> randomized avg (23.1% vs 5.8%)."""
        assert study.mean_shared_pct > study.randomized_mean_shared_pct

    def test_strong_beats_weak_exemplar(self, study):
        strong = study.strength(study.strong_community_id)
        weak = study.strength(study.weak_community_id)
        assert strong.avg_shared_size > weak.avg_shared_size

    def test_pdf_curve_shape(self, study):
        grid, density = study.pdf_curve()
        assert len(grid) == len(density) == 100
        assert (density >= 0).all()


class TestFigureSeven:
    def test_svg_renders_both_exemplars(self, study, investor_graph):
        for cid, title in ((study.strong_community_id, "strong"),
                           (study.weak_community_id, "weak")):
            svg = community_figure_svg(study, investor_graph, cid,
                                       title=title)
            assert svg.startswith("<svg")
            assert title in svg
            assert "<circle" in svg

    def test_unknown_community_raises(self, study):
        with pytest.raises(KeyError):
            study.strength(10**9)
