"""Tests for CoDA model selection by held-out AUC."""

import pytest

from repro.community.selection import (select_num_communities, split_edges,
                                       holdout_auc, edge_scores)
from repro.community.coda import CoDA
from repro.util.rng import RngStream

from tests.test_community_coda import _two_block_graph


class TestSplit:
    def test_partition_of_edges(self):
        graph, _ = _two_block_graph()
        train, held = split_edges(graph, 0.25, RngStream(1))
        assert train.num_edges + len(held) == graph.num_edges
        assert not (set(train.edges()) & set(held))

    def test_invalid_fraction(self):
        graph, _ = _two_block_graph()
        with pytest.raises(ValueError):
            split_edges(graph, 1.5, RngStream(1))

    def test_deterministic(self):
        graph, _ = _two_block_graph()
        _t1, h1 = split_edges(graph, 0.2, RngStream(9))
        _t2, h2 = split_edges(graph, 0.2, RngStream(9))
        assert h1 == h2


class TestScoring:
    def test_edge_scores_in_unit_interval(self):
        graph, _ = _two_block_graph()
        result = CoDA(num_communities=2, seed=1).fit(graph)
        scores = edge_scores(result, list(graph.edges())[:20])
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_fitted_model_separates_held_edges(self):
        graph, _ = _two_block_graph(noise_edges=0)
        train, held = split_edges(graph, 0.2, RngStream(3))
        result = CoDA(num_communities=2, max_iters=40, seed=1).fit(train)
        auc = holdout_auc(result, held, train, RngStream(4))
        assert auc > 0.7  # block structure makes hidden edges predictable

    def test_cold_nodes_score_zero(self):
        graph, _ = _two_block_graph()
        result = CoDA(num_communities=2, seed=1).fit(graph)
        scores = edge_scores(result, [(10**6, 10**6)])
        assert scores[0] == 0.0


class TestSelection:
    def test_right_count_wins_on_clean_blocks(self):
        graph, _ = _two_block_graph(noise_edges=0, seed=2)
        result = select_num_communities(graph, candidates=(1, 2),
                                        seed=5, max_iters=30)
        assert result.best_num_communities == 2
        assert set(result.scores) == {1, 2}

    def test_ranked_order(self):
        graph, _ = _two_block_graph()
        result = select_num_communities(graph, candidates=(1, 2, 4), seed=5)
        ranked = result.ranked()
        assert ranked[0][1] >= ranked[-1][1]

    def test_empty_candidates_rejected(self):
        graph, _ = _two_block_graph()
        with pytest.raises(ValueError):
            select_num_communities(graph, candidates=())
