"""Tests for the Facebook/Twitter enrichment crawlers."""

import pytest

from repro.crawl.enrich import TwitterCrawler
from repro.dfs.jsonlines import read_json_dataset


class TestScreenNameHeuristic:
    def test_plain_url(self):
        assert TwitterCrawler.screen_name_from_url(
            "https://twitter.example/acme_42") == "acme_42"

    def test_trailing_slash(self):
        assert TwitterCrawler.screen_name_from_url(
            "https://twitter.example/acme/") == "acme"


class TestFacebookEnrichment:
    def test_every_linked_page_fetched(self, crawled_platform):
        result = crawled_platform.crawl_summary.facebook
        assert result.fetched == result.linked
        assert result.dead_links == 0

    def test_linked_count_matches_world(self, crawled_platform):
        result = crawled_platform.crawl_summary.facebook
        expected = len(crawled_platform.world.facebook_pages)
        assert result.linked == expected

    def test_records_join_back_to_startups(self, crawled_platform):
        records = read_json_dataset(crawled_platform.dfs,
                                    "/crawl/facebook/pages")
        world = crawled_platform.world
        for record in records[:40]:
            company = world.companies[record["angellist_id"]]
            page = world.facebook_pages[company.facebook_page_id]
            assert record["fan_count"] == page.likes


class TestTwitterEnrichment:
    def test_every_linked_profile_fetched(self, crawled_platform):
        result = crawled_platform.crawl_summary.twitter
        assert result.fetched == result.linked
        assert result.linked == len(crawled_platform.world.twitter_profiles)

    def test_records_preserve_metrics(self, crawled_platform):
        records = read_json_dataset(crawled_platform.dfs,
                                    "/crawl/twitter/profiles")
        world = crawled_platform.world
        for record in records[:40]:
            company = world.companies[record["angellist_id"]]
            profile = world.twitter_profiles[company.twitter_profile_id]
            assert record["followers_count"] == profile.followers_count
            assert record["statuses_count"] == profile.statuses_count

    def test_rate_limit_handled_when_tokens_scarce(self, tiny_world):
        """With a single token the crawl must bench + sleep, not fail."""
        from repro.dfs import MiniDfs
        from repro.sources.hub import SourceHub
        from repro.crawl.client import ApiClient
        from repro.crawl.frontier import BfsCrawler
        from repro.crawl.tokens import TokenPool

        hub = SourceHub.from_world(tiny_world)
        dfs = MiniDfs()
        al_client = ApiClient(
            hub.angellist, hub.clock,
            token_pool=TokenPool([hub.angellist.issue_token(f"t{i}")
                                  for i in range(8)], hub.clock))
        BfsCrawler(al_client, dfs).run()

        crawler = TwitterCrawler(hub.twitter, hub.clock, dfs,
                                 num_tokens=1, num_workers=1)
        result = crawler.run()
        assert result.fetched == result.linked
        if result.linked > 180:
            assert result.client_stats.throttled > 0
            assert result.sim_duration >= 900.0
