"""Tests for block checksums, read-repair, atomic commits, and failover."""

import zlib
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import JsonLinesWriter, read_json_dataset
from repro.util.errors import StorageError


@pytest.fixture()
def dfs():
    return MiniDfs(num_datanodes=4, block_size=64, replication=3)


class TestChecksums:
    def test_blocks_carry_crc32(self, dfs):
        payload = b"x" * 200
        status = dfs.create("/f", payload)
        assert len(status.blocks) == 4  # 64-byte blocks
        for i, block in enumerate(status.blocks):
            assert block.checksum == zlib.crc32(payload[i * 64:(i + 1) * 64])

    def test_read_survives_one_corrupt_replica(self, dfs):
        dfs.create("/f", b"hello world" * 30)
        dfs.corrupt_block("/f", block_index=0)
        assert dfs.read("/f") == b"hello world" * 30
        assert dfs.checksum_failures == 1

    def test_read_repair_fixes_the_corrupt_replica(self, dfs):
        dfs.create("/f", b"hello world" * 30)
        node_id = dfs.corrupt_block("/f", block_index=0)
        dfs.read("/f")
        assert dfs.blocks_repaired == 1
        # the mangled copy now verifies again: a second read is clean
        before = dfs.checksum_failures
        assert dfs.read("/f") == b"hello world" * 30
        assert dfs.checksum_failures == before
        block = dfs.stat("/f").blocks[0]
        repaired = dfs.datanodes[node_id].get(block.block_id)
        assert zlib.crc32(repaired) == block.checksum

    def test_all_replicas_corrupt_raises(self, dfs):
        dfs.create("/f", b"payload-bytes")
        block = dfs.stat("/f").blocks[0]
        for node_id in block.locations:
            dfs.corrupt_block("/f", node_id=node_id)
        with pytest.raises(StorageError, match="checksum"):
            dfs.read("/f")

    def test_rereplicate_never_copies_a_corrupt_replica(self, dfs):
        dfs.create("/f", b"data" * 40)
        block = dfs.stat("/f").blocks[0]
        corrupt_node = dfs.corrupt_block("/f", node_id=block.locations[0])
        # kill a *clean* holder so the block is under-replicated
        clean = [n for n in block.locations if n != corrupt_node]
        dfs.kill_datanode(clean[0])
        dfs.rereplicate()
        # every live copy placed by rereplication must verify
        for node_id in dfs.stat("/f").blocks[0].locations:
            node = dfs.datanodes[node_id]
            if node.has(block.block_id) and node_id != corrupt_node:
                assert zlib.crc32(node.get(block.block_id)) == block.checksum
        assert dfs.read("/f") == b"data" * 40


class TestAtomicWrites:
    def test_write_atomic_creates_and_replaces(self, dfs):
        dfs.write_atomic_text("/ckpt.json", "v1")
        assert dfs.read_text("/ckpt.json") == "v1"
        dfs.write_atomic_text("/ckpt.json", "v2")
        assert dfs.read_text("/ckpt.json") == "v2"

    def test_no_temp_file_remains_after_commit(self, dfs):
        dfs.write_atomic_text("/data/part-00000.jsonl", '{"a":1}\n')
        dfs.write_atomic_text("/data/part-00000.jsonl", '{"a":2}\n')
        assert dfs.listdir("/data") == ["/data/part-00000.jsonl"]

    def test_torn_temp_file_is_invisible_to_glob_parts(self, dfs):
        # simulate a crash between temp-write and rename
        dfs.create_text("/data/.part-00001.jsonl.tmp-7", "torn")
        dfs.create_text("/data/part-00000.jsonl", '{"a":1}\n')
        assert dfs.glob_parts("/data") == ["/data/part-00000.jsonl"]

    def test_writer_reflush_replaces_stale_part(self, dfs):
        with JsonLinesWriter(dfs, "/ds", records_per_part=10) as writer:
            writer.write({"v": 1})
        # a resumed crawl re-flushes part 0 with different content
        with JsonLinesWriter(dfs, "/ds", records_per_part=10) as writer:
            writer.write({"v": 1})
            writer.write({"v": 2})
        assert read_json_dataset(dfs, "/ds") == [{"v": 1}, {"v": 2}]


class TestFailover:
    def test_read_fails_over_to_surviving_replica(self, dfs):
        dfs.create("/f", b"important" * 50)
        block = dfs.stat("/f").blocks[0]
        for node_id in block.locations[:-1]:
            dfs.kill_datanode(node_id)
        assert dfs.read("/f") == b"important" * 50

    def test_kill_and_rereplicate_under_concurrent_readers(self, dfs):
        records = [{"id": i, "pad": "x" * 20} for i in range(200)]
        with JsonLinesWriter(dfs, "/ds", records_per_part=50) as writer:
            writer.write_all(records)

        def read_everything(_i):
            got = read_json_dataset(dfs, "/ds")
            assert sorted(r["id"] for r in got) == list(range(200))
            return len(got)

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(read_everything, i) for i in range(4)]
            victim = next(iter(dfs.datanodes))
            dfs.kill_datanode(victim)
            futures += [pool.submit(read_everything, i) for i in range(4)]
            restored = dfs.rereplicate()
            futures += [pool.submit(read_everything, i) for i in range(4)]
            assert all(f.result() == 200 for f in futures)
        assert restored > 0
        assert dfs.under_replicated_blocks() == []
        # the dataset survived the whole episode intact
        assert read_json_dataset(dfs, "/ds") == records
