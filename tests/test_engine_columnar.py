"""Unit tests for the columnar core: RecordBatch and BatchBlock.

The differential batteries (``test_engine_backends``,
``test_engine_properties``) prove the columnar engine is invisible in
job results; these tests pin the primitives — pack/unpack round-trips
over every physical column type, slicing/concat, the tagged spill
codec, and the shared-memory block lifecycle (create → attach →
unlink, including cleanup when a job dies mid-flight).
"""

import pickle
import zlib

import pytest

from repro.engine.columnar import (DEFAULT_BATCH_ROWS, MODE_DICT,
                                   MODE_SCALAR, MODE_TUPLE,
                                   SHM_BASE_PREFIX, TAG_BOOL, TAG_BYTES,
                                   TAG_FLOAT64, TAG_INT64, TAG_OBJECT,
                                   TAG_STRING, BatchBlock, RecordBatch,
                                   ShmRegistry, batch_to_rows,
                                   decode_rows, encode_rows,
                                   list_segments, new_job_prefix,
                                   release_segments, shm_available)
from repro.engine.context import SparkLiteContext
from repro.util.errors import EngineError

needs_shm = pytest.mark.skipif(not shm_available(),
                               reason="no shared memory on this platform")

#: every row shape the engine moves, including the nasty ones — the
#: round-trip must preserve concrete types (bool is not int, 1 != 1.0
#: after a trip through a column) and byte-exact varlen payloads
ROW_SHAPES = {
    "empty": [],
    "ints": [1, -2, 3, 0, 2 ** 62],
    "floats": [0.5, -1.25, 3e300, float("inf")],
    "bools": [True, False, True],
    "strings": ["", "abc", "γράφω", "x" * 257],
    "surrogates": ["ok", "\udc80\udcfe"],  # undecodable utf-8 leftovers
    "bytes": [b"", b"\x00\xff", b"blob" * 40],
    "none_mixed": [1, None, 3, None],
    "bool_vs_int": [True, 1, False, 0],     # must NOT merge into int64
    "int_vs_float": [1, 1.0, 2],            # must NOT merge into float64
    "big_ints": [1 << 70, -(1 << 70), 5],   # outside int64 → OBJECT
    "kv_pairs": [(k % 3, "v" * k) for k in range(20)],
    "kv_none": [(1, None), (None, 2), (None, None)],
    "wide_tuples": [(i, float(i), str(i), i % 2 == 0, None)
                    for i in range(10)],
    "ragged_tuples": [(1,), (1, 2), (1, 2, 3)],
    "dict_records": [{"id": i, "name": f"n{i}", "ok": i % 2 == 0,
                      "score": i / 3.0 if i % 3 else None}
                     for i in range(12)],
    "mixed_rows": [1, "two", (3, 4), {"five": 5}, None, [6]],
    "nested": [([1, 2], {"a": 1}), ([3], {"b": 2})],
    "large_varlen": ["y" * 100_000, "", "z" * 250_000],
}


# ------------------------------------------------------------- record batch
class TestRecordBatchRoundTrip:
    @pytest.mark.parametrize("shape", sorted(ROW_SHAPES))
    def test_rows_roundtrip(self, shape):
        rows = ROW_SHAPES[shape]
        batch = RecordBatch.from_rows(rows)
        assert len(batch) == len(rows)
        assert repr(batch.to_rows()) == repr(rows)

    @pytest.mark.parametrize("shape", sorted(ROW_SHAPES))
    def test_pack_unpack_roundtrip(self, shape):
        rows = ROW_SHAPES[shape]
        blob = RecordBatch.from_rows(rows).pack()
        assert isinstance(blob, bytes)
        assert repr(RecordBatch.unpack(blob).to_rows()) == repr(rows)

    def test_mode_inference(self):
        assert RecordBatch.from_rows([1, 2]).mode == MODE_SCALAR
        assert RecordBatch.from_rows([(1, 2), (3, 4)]).mode == MODE_TUPLE
        batch = RecordBatch.from_rows([{"a": 1}, {"a": 2}])
        assert batch.mode == MODE_DICT and batch.keys == ("a",)
        # differently-keyed dicts cannot share columns
        assert RecordBatch.from_rows([{"a": 1}, {"b": 2}]).mode \
            == MODE_SCALAR

    def test_column_tags(self):
        batch = RecordBatch.from_rows(
            [(1, 1.0, True, "s", b"b", [1]) for _ in range(3)])
        assert batch.column_tags() == [TAG_INT64, TAG_FLOAT64, TAG_BOOL,
                                       TAG_STRING, TAG_BYTES, TAG_OBJECT]

    def test_bool_column_never_collapses_to_int(self):
        rows = [(True,), (False,)]
        out = RecordBatch.unpack(RecordBatch.from_rows(rows).pack()) \
            .to_rows()
        assert all(type(v) is bool for (v,) in out)

    def test_from_records_alias(self):
        records = ROW_SHAPES["dict_records"]
        batch = RecordBatch.from_records(records)
        assert batch.to_records() == records
        assert batch_to_rows(batch) == records

    def test_unpack_rejects_garbage(self):
        with pytest.raises(ValueError):
            RecordBatch.unpack(b"NOPE" + bytes(16))

    def test_equality(self):
        rows = ROW_SHAPES["kv_pairs"]
        assert RecordBatch.from_rows(rows) == RecordBatch.from_rows(rows)
        assert RecordBatch.from_rows(rows) != RecordBatch.from_rows([])


class TestSliceAndConcat:
    def test_slice_matches_list_slice(self):
        rows = ROW_SHAPES["wide_tuples"]
        batch = RecordBatch.from_rows(rows)
        for start, stop in [(0, 3), (2, 7), (5, None), (0, 0), (9, 99)]:
            piece = batch.slice(start, stop)
            assert piece.to_rows() == rows[start:stop]
            assert len(piece) == len(rows[start:stop])

    def test_slice_clamps_bounds(self):
        batch = RecordBatch.from_rows([1, 2, 3])
        assert batch.slice(-5, 100).to_rows() == [1, 2, 3]

    def test_concat_same_shape(self):
        rows = ROW_SHAPES["kv_pairs"]
        batch = RecordBatch.from_rows(rows)
        pieces = [batch.slice(i, i + 7) for i in range(0, len(rows), 7)]
        glued = RecordBatch.concat(pieces)
        assert glued.to_rows() == rows
        assert glued.mode == MODE_TUPLE

    def test_concat_mixed_shapes_falls_back_to_rows(self):
        left = RecordBatch.from_rows([(1, 2)])
        right = RecordBatch.from_rows(["scalar"])
        glued = RecordBatch.concat([left, right])
        assert glued.to_rows() == [(1, 2), "scalar"]

    def test_concat_empty(self):
        assert RecordBatch.concat([]).to_rows() == []

    def test_slices_cover_batch_exactly(self):
        # the batched narrow-op path: contiguous slices partition a batch
        rows = list(range(25))
        batch = RecordBatch.from_rows(rows)
        step = 8
        rebuilt = []
        for start in range(0, len(batch), step):
            rebuilt.extend(batch.slice(start, start + step).to_rows())
        assert rebuilt == rows


# ---------------------------------------------------------------- row codec
class TestRowCodec:
    @pytest.mark.parametrize("shape", sorted(ROW_SHAPES))
    def test_roundtrip(self, shape):
        rows = ROW_SHAPES[shape]
        assert repr(decode_rows(encode_rows(rows))) == repr(rows)

    def test_columnar_rows_take_the_batch_arm(self):
        assert encode_rows(ROW_SHAPES["kv_pairs"])[:1] == b"B"
        assert encode_rows(ROW_SHAPES["ints"])[:1] == b"B"

    def test_irregular_rows_take_the_pickle_arm(self):
        # a pickle wrapped in a batch header buys nothing
        assert encode_rows(ROW_SHAPES["mixed_rows"])[:1] == b"P"

    def test_codec_compresses_well(self):
        rows = [(k % 5, k) for k in range(4096)]
        packed = zlib.compress(encode_rows(rows), 6)
        pickled = zlib.compress(
            b"P" + pickle.dumps(rows, pickle.HIGHEST_PROTOCOL), 6)
        assert len(packed) < len(pickled)


# ------------------------------------------------------------- batch blocks
class TestBatchBlock:
    def test_seal_decode_roundtrip(self):
        items = [(k % 3, "v" * k) for k in range(50)]
        block = BatchBlock.seal(items)
        assert block.decode() == items
        assert block.count == 50
        assert block.encoding == BatchBlock.ENC_BATCH
        assert block.nbytes == len(block.payload) + block.header_bytes
        assert block.header_bytes > 0
        assert block.pickled_nbytes == block.nbytes
        assert block.shm_bytes == 0 and not block.via_shm

    def test_irregular_items_pickle_encode(self):
        items = ROW_SHAPES["mixed_rows"]
        block = BatchBlock.seal(items)
        assert block.encoding == BatchBlock.ENC_PICKLE
        assert repr(block.decode()) == repr(items)

    def test_compression_above_threshold(self):
        items = [(k % 2, "blob" * 50) for k in range(200)]
        block = BatchBlock.seal(items, compress=True, threshold=64)
        assert block.codec == BatchBlock.CODEC_ZLIB
        assert block.nbytes < block.raw_bytes
        assert block.decode() == items

    def test_small_blocks_stay_raw(self):
        block = BatchBlock.seal([(1, 2)], compress=True, threshold=1 << 20)
        assert block.codec == BatchBlock.CODEC_RAW
        assert block.decode() == [(1, 2)]

    def test_block_is_picklable(self):
        block = BatchBlock.seal([(k, k) for k in range(30)],
                                compress=True, threshold=1)
        clone = pickle.loads(pickle.dumps(block))
        assert clone.decode() == block.decode()

    def test_empty_block(self):
        block = BatchBlock.seal([])
        assert block.decode() == []
        assert block.count == 0


# ------------------------------------------------------------ shm lifecycle
@needs_shm
class TestShmLifecycle:
    def test_create_attach_unlink(self):
        prefix = new_job_prefix()
        items = [(k % 5, k) for k in range(100)]
        block = BatchBlock.seal(items, shm_prefix=prefix)
        try:
            assert block.via_shm and block.payload is None
            assert block.shm_name.startswith(prefix)
            assert block.shm_bytes > 0
            # the segment is visible on the shm filesystem
            assert block.shm_name in list_segments(prefix)
            # the pickled form is a descriptor, not the data
            assert len(pickle.dumps(block)) < 256
            # a block may be decoded more than once: retried and
            # speculative reducers attach to the same segment
            assert block.decode() == items
            assert block.decode() == items
        finally:
            released = release_segments(prefix)
        assert released == 1
        assert list_segments(prefix) == []
        # releasing again is a no-op, not an error
        assert release_segments(prefix, [block.shm_name]) == 0

    def test_decode_through_pickle_wall(self):
        prefix = new_job_prefix()
        block = BatchBlock.seal(list(range(64)), shm_prefix=prefix)
        try:
            clone = pickle.loads(pickle.dumps(block))
            assert clone.decode() == list(range(64))
        finally:
            release_segments(prefix)

    def test_accounting_splits_shm_from_pickled(self):
        prefix = new_job_prefix()
        block = BatchBlock.seal([(k, k) for k in range(200)],
                                shm_prefix=prefix)
        try:
            assert block.nbytes == block.shm_bytes + block.header_bytes
            assert block.pickled_nbytes == block.header_bytes
        finally:
            release_segments(prefix)

    def test_registry_tracks_and_releases(self):
        registry = ShmRegistry()
        blocks = [BatchBlock.seal([(i, i)], shm_prefix=registry.prefix)
                  for i in range(3)]
        for block in blocks:
            registry.track(block.shm_name)
        registry.track(None)  # inline blocks have no segment
        assert len(registry) == 3
        assert registry.release() == 3
        assert list_segments(registry.prefix) == []
        assert registry.release() == 0  # idempotent

    def test_prefix_sweep_reclaims_untracked_segments(self):
        # a worker that dies between sealing and returning leaves a
        # segment no descriptor points at; the prefix sweep finds it
        registry = ShmRegistry()
        orphan = BatchBlock.seal([1, 2, 3], shm_prefix=registry.prefix)
        assert orphan.via_shm and len(registry) == 0
        assert registry.release() == 1
        assert list_segments(registry.prefix) == []

    def test_distinct_jobs_get_distinct_prefixes(self):
        assert new_job_prefix() != new_job_prefix()
        assert new_job_prefix().startswith(SHM_BASE_PREFIX)


def _pair_mod3(x):
    return (x % 3, x)


def _add(a, b):
    return a + b


def _boom(v):
    raise RuntimeError("post-shuffle failure")


@needs_shm
class TestShmThroughJobs:
    def test_job_releases_segments_at_end(self):
        with SparkLiteContext(parallelism=2, backend="serial",
                              engine_columnar=True, batch_rows=8,
                              shuffle_shm=True) as sc:
            out = (sc.parallelize(range(60), 4)
                   .map(_pair_mod3).reduce_by_key(_add).collect())
            metrics = sc.last_job_metrics
        assert sorted(out) == sorted(
            (k, sum(x for x in range(60) if x % 3 == k)) for k in range(3))
        assert metrics.shuffle_bytes_shm > 0
        assert list_segments(SHM_BASE_PREFIX) == []

    def test_failed_job_leaks_nothing(self):
        # the failure lands *after* the exchange, when shm segments for
        # the shuffle are live; the job-end sweep must still run
        with SparkLiteContext(parallelism=2, backend="serial",
                              engine_columnar=True, batch_rows=8,
                              shuffle_shm=True, task_retries=0) as sc:
            with pytest.raises(RuntimeError):
                (sc.parallelize(range(40), 4)
                 .map(_pair_mod3).reduce_by_key(_add)
                 .map_values(_boom).collect())
        assert list_segments(SHM_BASE_PREFIX) == []


# ------------------------------------------------------------ context knobs
class TestContextKnobs:
    def test_batch_rows_must_be_positive(self):
        with pytest.raises(EngineError):
            SparkLiteContext(parallelism=1, engine_columnar=True,
                             batch_rows=0)

    def test_default_batch_rows(self):
        with SparkLiteContext(parallelism=1, engine_columnar=True) as sc:
            assert sc.batch_rows == DEFAULT_BATCH_ROWS

    def test_shm_off_without_columnar(self):
        with SparkLiteContext(parallelism=1) as sc:
            assert sc.shm_enabled is False

    def test_shm_off_when_disabled_explicitly(self):
        with SparkLiteContext(parallelism=1, engine_columnar=True,
                              shuffle_shm=False) as sc:
            assert sc.shm_enabled is False

    def test_shm_auto_follows_backend_support(self):
        with SparkLiteContext(parallelism=1, backend="serial",
                              engine_columnar=True) as sc:
            assert sc.shm_enabled is False  # serial gains nothing
        if shm_available():
            with SparkLiteContext(parallelism=2, backend="process",
                                  engine_columnar=True) as sc:
                assert sc.shm_enabled is True

    @needs_shm
    def test_shm_forced_on_any_backend(self):
        with SparkLiteContext(parallelism=1, backend="serial",
                              engine_columnar=True,
                              shuffle_shm=True) as sc:
            assert sc.shm_enabled is True


# ----------------------------------------------------------- dataset scans
class TestBatchScans:
    def test_read_part_batches_roundtrip(self, tmp_path):
        from repro.dfs.filesystem import MiniDfs
        from repro.dfs.jsonlines import (list_partitions,
                                         read_json_dataset,
                                         read_part_batches,
                                         write_json_dataset)
        records = [{"id": i, "name": f"n{i}", "score": i / 2.0}
                   for i in range(25)]
        dfs = MiniDfs(num_datanodes=2)
        write_json_dataset(dfs, "/scan", records, partitions=2)
        paths = list_partitions(dfs, "/scan")
        rows = []
        for path in paths:
            for batch in read_part_batches(dfs, path, 7):
                assert len(batch) <= 7
                rows.extend(batch.to_records())
        assert sorted(map(repr, rows)) == sorted(
            map(repr, read_json_dataset(dfs, "/scan")))

    def test_json_batches_matches_row_scan(self):
        from repro.dfs.filesystem import MiniDfs
        from repro.dfs.jsonlines import write_json_dataset
        records = [{"k": i % 4, "v": i} for i in range(40)]
        dfs = MiniDfs(num_datanodes=2)
        write_json_dataset(dfs, "/scan2", records, partitions=3)
        with SparkLiteContext(parallelism=2, engine_columnar=True,
                              batch_rows=8) as sc:
            from repro.engine.columnar import batch_to_rows as to_rows
            batched = (sc.json_batches(dfs, "/scan2")
                       .flat_map(to_rows).collect())
            plain = sc.json_dataset(dfs, "/scan2").collect()
        assert batched == plain
