"""Tests for success prediction (logistic regression + AUC)."""

import numpy as np
import pytest

from repro.analysis.prediction import auc_score, predict_success


class TestAucScore:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(labels, scores) == 1.0

    def test_inverted(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(labels, scores) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        assert auc_score(labels, scores) == pytest.approx(0.5, abs=0.03)

    def test_ties_give_midrank(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert auc_score(labels, scores) == 0.5

    def test_degenerate_labels_nan(self):
        assert np.isnan(auc_score(np.array([1, 1]), np.array([0.1, 0.9])))


class TestPrediction:
    @pytest.fixture(scope="class")
    def result(self, crawled_platform):
        return crawled_platform.run_plugin("success_prediction", seed=5)

    def test_auc_beats_chance(self, result):
        """Engagement is planted to be predictive — AUC must clear 0.7."""
        assert result.test_auc > 0.7

    def test_train_test_split(self, result, crawled_platform):
        total = len(crawled_platform.world.companies)
        assert result.num_train + result.num_test == total

    def test_positive_rate_matches_world(self, result, crawled_platform):
        world_rate = crawled_platform.world.summary()["success_rate"]
        assert result.positive_rate == pytest.approx(world_rate, abs=1e-9)

    def test_social_features_carry_signal(self, result):
        top = dict(result.top_features(8))
        social = {"log_fb_likes", "log_tw_statuses", "log_tw_followers",
                  "has_facebook", "has_twitter"}
        assert social & set(top)

    def test_coefficients_shape(self, result):
        assert len(result.coefficients) == len(result.feature_names)

    def test_deterministic(self, crawled_platform):
        a = crawled_platform.run_plugin("success_prediction", seed=5)
        b = crawled_platform.run_plugin("success_prediction", seed=5)
        assert a.test_auc == b.test_auc
