"""Second round of property-based tests: joins, lifecycle matching,
recommendation and significance invariants."""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.dynamic_communities import _jaccard, _overlap
from repro.analysis.prediction import auc_score
from repro.analysis.recommend import InvestorRecommender
from repro.engine.context import SparkLiteContext
from repro.graph.bipartite import BipartiteGraph
from repro.metrics.significance import chi_square_2x2, wilson_interval

import numpy as np

kv_lists = st.lists(st.tuples(st.integers(0, 6), st.integers(-50, 50)),
                    max_size=60)
node_sets = st.sets(st.integers(0, 40), max_size=15)
edge_lists = st.lists(st.tuples(st.integers(0, 15), st.integers(100, 130)),
                      min_size=1, max_size=80)


# ------------------------------------------------------------------ engine

@given(kv_lists, kv_lists)
def test_engine_join_matches_nested_loop(left, right):
    expected = sorted(
        (k, (lv, rv)) for k, lv in left for k2, rv in right if k == k2)
    with SparkLiteContext(parallelism=2) as sc:
        joined = sorted(sc.parallelize(left, 3)
                        .join(sc.parallelize(right, 2)).collect())
    assert joined == expected


@given(kv_lists)
def test_engine_left_join_preserves_left_cardinality_lower_bound(pairs):
    with SparkLiteContext(parallelism=2) as sc:
        left = sc.parallelize(pairs, 2)
        out = left.left_outer_join(sc.parallelize([], 1)).collect()
    assert sorted(k for k, _v in out) == sorted(k for k, _v in pairs)
    assert all(v[1] is None for _k, v in out)


@given(st.lists(st.integers(-100, 100), max_size=100), st.integers(1, 5))
def test_engine_stats_matches_python(data, partitions):
    with SparkLiteContext(parallelism=2) as sc:
        stats = sc.parallelize(data, partitions).stats()
    assert stats["count"] == len(data)
    if data:
        assert stats["mean"] == pytest.approx(sum(data) / len(data))
        assert stats["min"] == min(data)
        assert stats["max"] == max(data)


# -------------------------------------------------------- set similarities

@given(node_sets, node_sets)
def test_jaccard_and_overlap_bounds(a, b):
    j = _jaccard(a, b)
    o = _overlap(a, b)
    assert 0.0 <= j <= 1.0
    assert 0.0 <= o <= 1.0
    assert o >= j  # overlap coefficient dominates Jaccard
    if a and a == b:
        assert j == o == 1.0


@given(node_sets, node_sets)
def test_overlap_one_iff_containment(a, b):
    if a and b:
        contained = a <= b or b <= a
        assert (_overlap(a, b) == 1.0) == contained


# ------------------------------------------------------------ significance

@given(st.integers(0, 200), st.integers(0, 200),
       st.integers(0, 200), st.integers(0, 200))
def test_chi_square_p_value_in_range(a, b, c, d):
    if a + b + c + d == 0:
        return
    result = chi_square_2x2(a, b, c, d)
    assert 0.0 <= result.p_value <= 1.0
    assert result.statistic >= 0.0


@given(st.integers(1, 500), st.data())
def test_wilson_interval_ordering(total, data):
    successes = data.draw(st.integers(0, total))
    lo, hi = wilson_interval(successes, total)
    assert 0.0 <= lo <= successes / total <= hi <= 1.0


# -------------------------------------------------------------------- AUC

@given(st.lists(st.tuples(st.booleans(),
                          st.floats(0, 1, allow_nan=False)),
                min_size=4, max_size=100))
def test_auc_complement_symmetry(pairs):
    labels = np.array([1.0 if flag else 0.0 for flag, _s in pairs])
    scores = np.array([s for _f, s in pairs])
    if labels.min() == labels.max():
        return
    auc = auc_score(labels, scores)
    flipped = auc_score(labels, -scores)
    assert auc == pytest.approx(1.0 - flipped, abs=1e-9)
    assert 0.0 <= auc <= 1.0


# ---------------------------------------------------------- recommendation

@given(edge_lists)
def test_recommender_never_recommends_portfolio(edges):
    graph = BipartiteGraph(edges)
    recommender = InvestorRecommender(graph)
    for investor in graph.investors[:5]:
        top = recommender.recommend(investor, k=10)
        portfolio = graph.portfolio(investor)
        assert all(c not in portfolio for c, _s in top)
        scores = [s for _c, s in top]
        assert scores == sorted(scores, reverse=True)


@given(edge_lists)
def test_recommender_scores_nonnegative(edges):
    graph = BipartiteGraph(edges)
    recommender = InvestorRecommender(graph)
    investor = graph.investors[0]
    for company in graph.companies[:10]:
        assert recommender.score(investor, company) >= 0.0
