"""Tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_label_sensitivity(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_64_bit_range(self):
        value = derive_seed(123456789, "label")
        assert 0 <= value < 2 ** 64


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a = RngStream(7)
        b = RngStream(7)
        assert [a.py.random() for _ in range(5)] == \
               [b.py.random() for _ in range(5)]
        assert np.allclose(a.np.random(5), b.np.random(5))

    def test_children_independent_of_sibling_creation(self):
        root = RngStream(7)
        child_a_first = root.child("a").py.random()
        root2 = RngStream(7)
        root2.child("b")  # creating an extra child must not disturb "a"
        assert root2.child("a").py.random() == child_a_first

    def test_children_iterator(self):
        root = RngStream(3)
        kids = list(root.children("w", 4))
        assert len(kids) == 4
        assert len({k.seed for k in kids}) == 4

    def test_bernoulli_bounds(self):
        rng = RngStream(1)
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)
        assert rng.bernoulli(0.0) is False
        assert rng.bernoulli(1.0) is True

    def test_zipf_bounded_range(self):
        rng = RngStream(5)
        draws = rng.zipf_bounded(2.0, 50, size=2000)
        assert draws.min() >= 1
        assert draws.max() <= 50

    def test_zipf_bounded_scalar(self):
        value = RngStream(5).zipf_bounded(2.0, 10)
        assert isinstance(value, int)
        assert 1 <= value <= 10

    def test_zipf_bounded_heavy_head(self):
        draws = RngStream(5).zipf_bounded(2.0, 1000, size=5000)
        # P(1) = 1/zeta(2) ≈ 0.61 for alpha=2
        assert 0.5 < (draws == 1).mean() < 0.72

    def test_zipf_invalid_max(self):
        with pytest.raises(ValueError):
            RngStream(1).zipf_bounded(2.0, 0)
