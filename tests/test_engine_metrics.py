"""Tests for engine job instrumentation."""

import json

import pytest

from repro.engine.context import SparkLiteContext


@pytest.fixture()
def sc():
    context = SparkLiteContext(parallelism=2)
    yield context
    context.stop()


class TestJobMetrics:
    def test_narrow_job_counts(self, sc):
        sc.parallelize(range(10), 4).map(lambda x: x + 1).collect()
        metrics = sc.last_job_metrics
        assert metrics.rdds_materialized == 2  # source + map
        assert metrics.partitions_computed == 8
        assert metrics.shuffles == 0

    def test_shuffle_records_counted(self, sc):
        (sc.parallelize(range(100), 4)
         .map(lambda x: (x % 5, 1))
         .reduce_by_key(lambda a, b: a + b)
         .collect())
        metrics = sc.last_job_metrics
        assert metrics.shuffles == 1
        assert metrics.shuffle_records == 100
        assert metrics.shuffle_bytes > 0

    def test_cached_hits(self, sc):
        rdd = sc.parallelize(range(10), 2).map(lambda x: x).cache()
        rdd.collect()
        rdd.count()
        assert sc.last_job_metrics.cached_hits == 1
        assert sc.last_job_metrics.rdds_materialized == 0

    def test_join_shuffles_both_sides(self, sc):
        left = sc.parallelize([(1, "a"), (2, "b")], 2)
        right = sc.parallelize([(1, "x")], 1)
        left.join(right).collect()
        assert sc.last_job_metrics.shuffles == 2
        assert sc.last_job_metrics.shuffle_records == 3

    def test_as_dict_keys(self, sc):
        sc.parallelize([1]).collect()
        d = sc.last_job_metrics.as_dict()
        assert set(d) == {"rdds_materialized", "partitions_computed",
                          "shuffles", "shuffle_records",
                          "shuffle_records_moved", "shuffle_bytes",
                          "shuffle_bytes_raw", "broadcast_joins",
                          "cached_hits", "fallbacks", "task_attempts",
                          "retried_tasks", "lost_executors",
                          "recomputed_partitions", "speculative_launched",
                          "speculative_won", "zombie_tasks",
                          "pool_rebuilds", "checkpoint_hits",
                          "checkpoint_writes", "backend", "wall_s"}

    def test_metrics_reset_per_job(self, sc):
        sc.parallelize(range(50), 2).map(lambda x: (x, 1)) \
          .reduce_by_key(lambda a, b: a + b).collect()
        first = sc.last_job_metrics.shuffle_records
        sc.parallelize([1, 2]).collect()
        assert sc.last_job_metrics.shuffle_records == 0
        assert first == 50


class TestStageMetrics:
    def test_per_stage_rows(self, sc):
        (sc.parallelize(range(40), 4)
         .map(lambda x: (x % 3, x))
         .reduce_by_key(lambda a, b: a + b)
         .collect())
        stages = sc.last_job_metrics.stages
        assert [s.kind for s in stages] == ["task", "narrow", "shuffle"]
        assert [s.name for s in stages] == \
            ["parallelize", "map", "reduceByKey"]
        assert stages[1].records_out == 40
        assert stages[2].shuffle_records == 40
        assert all(s.wall_s >= 0 for s in stages)
        assert [s.stage_id for s in stages] == [0, 1, 2]

    def test_cached_stage_row(self, sc):
        rdd = sc.parallelize(range(6), 2).map(lambda x: x * 2).cache()
        rdd.collect()
        rdd.count()
        stages = sc.last_job_metrics.stages
        assert len(stages) == 1
        assert stages[0].kind == "cached"
        assert stages[0].cache_hit

    def test_stage_dump_is_json(self, sc):
        sc.parallelize(range(10), 2).distinct().collect()
        payload = json.loads(sc.last_job_metrics.to_json())
        assert payload["shuffles"] == 1
        assert isinstance(payload["stages"], list)
        assert {"kind", "name", "partitions", "wall_s"} \
            <= set(payload["stages"][0])

    def test_backend_recorded(self):
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            sc.parallelize([1, 2]).collect()
            assert sc.last_job_metrics.backend == "serial"


class TestMetricsTrace:
    def test_trace_accumulates_jobs(self, sc):
        sc.parallelize([1]).collect()
        sc.parallelize([2, 3]).count()
        assert len(sc.metrics_trace) == 2
        payload = json.loads(sc.metrics_trace.to_json())
        assert len(payload["jobs"]) == 2

    def test_trace_is_bounded(self):
        with SparkLiteContext(parallelism=1) as sc:
            sc.metrics_trace.maxlen = 3
            for _ in range(5):
                sc.parallelize([1]).collect()
            assert len(sc.metrics_trace) == 3
