"""Tests for engine job instrumentation."""

import pytest

from repro.engine.context import SparkLiteContext


@pytest.fixture()
def sc():
    context = SparkLiteContext(parallelism=2)
    yield context
    context.stop()


class TestJobMetrics:
    def test_narrow_job_counts(self, sc):
        sc.parallelize(range(10), 4).map(lambda x: x + 1).collect()
        metrics = sc.last_job_metrics
        assert metrics.rdds_materialized == 2  # source + map
        assert metrics.partitions_computed == 8
        assert metrics.shuffles == 0

    def test_shuffle_records_counted(self, sc):
        (sc.parallelize(range(100), 4)
         .map(lambda x: (x % 5, 1))
         .reduce_by_key(lambda a, b: a + b)
         .collect())
        metrics = sc.last_job_metrics
        assert metrics.shuffles == 1
        assert metrics.shuffle_records == 100

    def test_cached_hits(self, sc):
        rdd = sc.parallelize(range(10), 2).map(lambda x: x).cache()
        rdd.collect()
        rdd.count()
        assert sc.last_job_metrics.cached_hits == 1
        assert sc.last_job_metrics.rdds_materialized == 0

    def test_join_shuffles_both_sides(self, sc):
        left = sc.parallelize([(1, "a"), (2, "b")], 2)
        right = sc.parallelize([(1, "x")], 1)
        left.join(right).collect()
        assert sc.last_job_metrics.shuffles == 2
        assert sc.last_job_metrics.shuffle_records == 3

    def test_as_dict_keys(self, sc):
        sc.parallelize([1]).collect()
        d = sc.last_job_metrics.as_dict()
        assert set(d) == {"rdds_materialized", "partitions_computed",
                          "shuffles", "shuffle_records", "cached_hits"}

    def test_metrics_reset_per_job(self, sc):
        sc.parallelize(range(50), 2).map(lambda x: (x, 1)) \
          .reduce_by_key(lambda a, b: a + b).collect()
        first = sc.last_job_metrics.shuffle_records
        sc.parallelize([1, 2]).collect()
        assert sc.last_job_metrics.shuffle_records == 0
        assert first == 50
