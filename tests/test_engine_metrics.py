"""Tests for engine job instrumentation."""

import json

import pytest

from repro.engine.context import SparkLiteContext


@pytest.fixture()
def sc():
    context = SparkLiteContext(parallelism=2)
    yield context
    context.stop()


class TestJobMetrics:
    def test_narrow_job_counts(self, sc):
        sc.parallelize(range(10), 4).map(lambda x: x + 1).collect()
        metrics = sc.last_job_metrics
        assert metrics.rdds_materialized == 2  # source + map
        assert metrics.partitions_computed == 8
        assert metrics.shuffles == 0

    def test_shuffle_records_counted(self, sc):
        (sc.parallelize(range(100), 4)
         .map(lambda x: (x % 5, 1))
         .reduce_by_key(lambda a, b: a + b)
         .collect())
        metrics = sc.last_job_metrics
        assert metrics.shuffles == 1
        assert metrics.shuffle_records == 100
        assert metrics.shuffle_bytes > 0

    def test_cached_hits(self, sc):
        rdd = sc.parallelize(range(10), 2).map(lambda x: x).cache()
        rdd.collect()
        rdd.count()
        assert sc.last_job_metrics.cached_hits == 1
        assert sc.last_job_metrics.rdds_materialized == 0

    def test_join_shuffles_both_sides(self, sc):
        left = sc.parallelize([(1, "a"), (2, "b")], 2)
        right = sc.parallelize([(1, "x")], 1)
        left.join(right).collect()
        assert sc.last_job_metrics.shuffles == 2
        assert sc.last_job_metrics.shuffle_records == 3

    def test_as_dict_keys(self, sc):
        sc.parallelize([1]).collect()
        d = sc.last_job_metrics.as_dict()
        assert set(d) == {"rdds_materialized", "partitions_computed",
                          "shuffles", "shuffle_records",
                          "shuffle_records_moved", "shuffle_bytes",
                          "shuffle_bytes_raw", "shuffle_bytes_shm",
                          "shuffle_bytes_pickled", "broadcast_joins",
                          "broadcast_bytes",
                          "cached_hits", "fallbacks", "task_attempts",
                          "retried_tasks", "lost_executors",
                          "recomputed_partitions", "speculative_launched",
                          "speculative_won", "zombie_tasks",
                          "pool_rebuilds", "checkpoint_hits",
                          "checkpoint_writes",
                          "adaptive_coalesces", "adaptive_partitions_merged",
                          "skew_splits", "skew_split_tasks",
                          "scan_bytes_skipped", "scan_fields_pruned",
                          "pushed_filters", "pushed_projections",
                          "stats_sampled_partitions", "stats_sampled_rows",
                          "stats_repeat_observations",
                          "backend", "wall_s"}

    def test_metrics_reset_per_job(self, sc):
        sc.parallelize(range(50), 2).map(lambda x: (x, 1)) \
          .reduce_by_key(lambda a, b: a + b).collect()
        first = sc.last_job_metrics.shuffle_records
        sc.parallelize([1, 2]).collect()
        assert sc.last_job_metrics.shuffle_records == 0
        assert first == 50


def _pair_mod5(x):
    return (x % 5, x)


def _add(a, b):
    return a + b


class TestShuffleByteDecomposition:
    """``shuffle_bytes`` splits into what rode shared memory and what
    actually crossed a pickle wall; the two must always sum back."""

    def test_row_engine_is_all_pickled(self):
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            (sc.parallelize(range(60), 3)
             .map(_pair_mod5).reduce_by_key(_add).collect())
            metrics = sc.last_job_metrics
        assert metrics.shuffle_bytes > 0
        assert metrics.shuffle_bytes_shm == 0
        assert metrics.shuffle_bytes_pickled == metrics.shuffle_bytes

    def test_columnar_without_shm_is_all_pickled(self):
        with SparkLiteContext(parallelism=2, backend="serial",
                              engine_columnar=True, batch_rows=8,
                              shuffle_shm=False) as sc:
            (sc.parallelize(range(60), 3)
             .map(_pair_mod5).reduce_by_key(_add).collect())
            metrics = sc.last_job_metrics
        assert metrics.shuffle_bytes_shm == 0
        assert metrics.shuffle_bytes_pickled == metrics.shuffle_bytes

    def test_shm_moves_the_data_leaves_the_headers(self):
        from repro.engine.columnar import shm_available
        if not shm_available():
            pytest.skip("no shared memory on this platform")
        with SparkLiteContext(parallelism=2, backend="serial",
                              engine_columnar=True, batch_rows=8,
                              shuffle_shm=True) as sc:
            (sc.parallelize(range(60), 3)
             .map(_pair_mod5).reduce_by_key(_add).collect())
            metrics = sc.last_job_metrics
        assert metrics.shuffle_bytes_shm > 0
        # descriptors still cross the wall: pickled never hits zero
        assert metrics.shuffle_bytes_pickled > 0
        assert metrics.shuffle_bytes == \
            metrics.shuffle_bytes_shm + metrics.shuffle_bytes_pickled
        # the same split is visible per stage
        stage = next(s for s in metrics.stages if s.kind == "shuffle")
        assert stage.shuffle_bytes_shm > 0
        assert stage.shuffle_bytes == \
            stage.shuffle_bytes_shm + stage.shuffle_bytes_pickled
        assert {"shuffle_bytes_shm", "shuffle_bytes_pickled"} \
            <= set(stage.as_dict())

    def test_process_backend_decomposes_too(self):
        from repro.engine.columnar import shm_available
        with SparkLiteContext(parallelism=2, backend="process",
                              engine_columnar=True, batch_rows=8) as sc:
            (sc.parallelize(range(60), 3)
             .map(_pair_mod5).reduce_by_key(_add).collect())
            metrics = sc.last_job_metrics
        assert metrics.shuffle_bytes == \
            metrics.shuffle_bytes_shm + metrics.shuffle_bytes_pickled
        if shm_available():
            assert metrics.shuffle_bytes_shm > 0

    def test_headers_counted_in_sealed_bytes(self):
        # the old accounting reported payload bytes only; a sealed
        # exchange now also counts each block's pickled envelope
        with SparkLiteContext(parallelism=2, backend="serial",
                              shuffle_compress=True,
                              shuffle_compress_threshold=1 << 30) as sc:
            (sc.parallelize(range(60), 3)
             .map(_pair_mod5).reduce_by_key(_add).collect())
            sealed = sc.last_job_metrics
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            (sc.parallelize(range(60), 3)
             .map(_pair_mod5).reduce_by_key(_add).collect())
            unsealed = sc.last_job_metrics
        # same payloads; the sealed run additionally counts headers
        assert sealed.shuffle_bytes > unsealed.shuffle_bytes


class TestStageMetrics:
    def test_per_stage_rows(self, sc):
        (sc.parallelize(range(40), 4)
         .map(lambda x: (x % 3, x))
         .reduce_by_key(lambda a, b: a + b)
         .collect())
        stages = sc.last_job_metrics.stages
        assert [s.kind for s in stages] == ["task", "narrow", "shuffle"]
        assert [s.name for s in stages] == \
            ["parallelize", "map", "reduceByKey"]
        assert stages[1].records_out == 40
        assert stages[2].shuffle_records == 40
        assert all(s.wall_s >= 0 for s in stages)
        assert [s.stage_id for s in stages] == [0, 1, 2]

    def test_cached_stage_row(self, sc):
        rdd = sc.parallelize(range(6), 2).map(lambda x: x * 2).cache()
        rdd.collect()
        rdd.count()
        stages = sc.last_job_metrics.stages
        assert len(stages) == 1
        assert stages[0].kind == "cached"
        assert stages[0].cache_hit

    def test_stage_dump_is_json(self, sc):
        sc.parallelize(range(10), 2).distinct().collect()
        payload = json.loads(sc.last_job_metrics.to_json())
        assert payload["shuffles"] == 1
        assert isinstance(payload["stages"], list)
        assert {"kind", "name", "partitions", "wall_s"} \
            <= set(payload["stages"][0])

    def test_backend_recorded(self):
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            sc.parallelize([1, 2]).collect()
            assert sc.last_job_metrics.backend == "serial"


class TestMetricsTrace:
    def test_trace_accumulates_jobs(self, sc):
        sc.parallelize([1]).collect()
        sc.parallelize([2, 3]).count()
        assert len(sc.metrics_trace) == 2
        payload = json.loads(sc.metrics_trace.to_json())
        assert len(payload["jobs"]) == 2

    def test_trace_is_bounded(self):
        with SparkLiteContext(parallelism=1) as sc:
            sc.metrics_trace.maxlen = 3
            for _ in range(5):
                sc.parallelize([1]).collect()
            assert len(sc.metrics_trace) == 3
