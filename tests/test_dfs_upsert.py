"""Keyed upsert datasets: exactly-once apply, crash windows, compaction."""

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.dfs.upsert import UpsertDataset
from repro.util.errors import StorageError


@pytest.fixture()
def dfs():
    return MiniDfs(num_datanodes=3)


def _rows(*ids, **extra):
    return [dict({"id": i, "v": extra.get("v", 0)}, **{}) for i in ids]


class TestApply:
    def test_records_land_and_merge_by_key(self, dfs):
        ds = UpsertDataset(dfs, "/ds")
        ds.apply("u1", [{"id": 1, "v": 1}, {"id": 2, "v": 1}])
        ds.apply("u2", [{"id": 2, "v": 2}, {"id": 3, "v": 2}])
        assert ds.key_count() == 3
        by_id = {r["id"]: r["v"] for r in ds.read()}
        assert by_id == {1: 1, 2: 2, 3: 2}  # newest delta wins per key

    def test_reapplied_unit_is_a_noop(self, dfs):
        ds = UpsertDataset(dfs, "/ds")
        first = ds.apply("u1", [{"id": 1, "v": 1}])
        files_after = sorted(dfs.listdir("/ds"))
        again = ds.apply("u1", [{"id": 1, "v": 999}])
        assert first.applied and not again.applied
        assert again.delta_seq == first.delta_seq
        assert sorted(dfs.listdir("/ds")) == files_after
        assert ds.read() == [{"id": 1, "v": 1}]

    def test_composite_key(self, dfs):
        ds = UpsertDataset(dfs, "/edges", key=("a", "b"))
        ds.apply("u1", [{"a": 1, "b": 2}, {"a": 1, "b": 3}])
        ds.apply("u2", [{"a": 1, "b": 2}])  # same edge again
        assert ds.key_count() == 2

    def test_missing_key_field_rejected(self, dfs):
        ds = UpsertDataset(dfs, "/ds")
        with pytest.raises(StorageError):
            ds.apply("u1", [{"no_id": 1}])

    def test_empty_unit_still_remembered(self, dfs):
        ds = UpsertDataset(dfs, "/ds")
        assert ds.apply("u1", []).applied
        assert not ds.apply("u1", []).applied
        assert ds.key_count() == 0


class TestCrashWindows:
    def test_crash_between_delta_and_manifest_leaves_old_view(self, dfs):
        ds = UpsertDataset(dfs, "/ds")
        ds.apply("u1", [{"id": 1, "v": 1}])

        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom):
            ds.apply("u2", [{"id": 2, "v": 2}],
                     on_delta_written=lambda: (_ for _ in ()).throw(Boom()))
        # the unreferenced delta exists but the view is unchanged
        assert ds.key_count() == 1
        assert "u2" not in ds.applied_units()
        orphans = ds.vacuum()
        assert len(orphans) == 1
        # the unit re-applies cleanly after the vacuum
        assert ds.apply("u2", [{"id": 2, "v": 2}]).applied
        assert ds.key_count() == 2

    def test_canonical_bytes_ignore_layout(self, dfs):
        one = UpsertDataset(dfs, "/one")
        two = UpsertDataset(dfs, "/two", records_per_part=1)
        one.apply("a", [{"id": 1, "v": 1}, {"id": 2, "v": 2}])
        two.apply("x", [{"id": 2, "v": 2}])
        two.apply("y", [{"id": 1, "v": 1}])
        two.compact()
        assert one.canonical_bytes() == two.canonical_bytes()


class TestCompaction:
    def test_compact_preserves_view_and_applied_units(self, dfs):
        ds = UpsertDataset(dfs, "/ds", records_per_part=2)
        ds.apply("u1", [{"id": i, "v": 1} for i in range(5)])
        ds.apply("u2", [{"id": 2, "v": 2}])
        before = ds.canonical_bytes()
        stats = ds.compact()
        assert stats.deltas_folded == 2
        assert stats.records_after == 5
        assert ds.canonical_bytes() == before
        # exactly-once survives compaction: a late redelivery of u2
        # must still be recognized
        assert not ds.apply("u2", [{"id": 2, "v": 99}]).applied
        assert ds.read()[2]["v"] == 2

    def test_watermark_does_not_rewind_on_compact(self, dfs):
        ds = UpsertDataset(dfs, "/ds")
        ds.apply("u1", [{"id": 1}])
        ds.apply("u2", [{"id": 2}])
        high = ds.max_delta_seq()
        ds.compact()
        assert ds.max_delta_seq() == high
        assert ds.delta_files_since(0) == []  # folded into base
        ds.apply("u3", [{"id": 3}])
        assert [seq for seq, _ in ds.delta_files_since(high)] == [high + 1]

    def test_duplicate_key_groups_counts_cross_file_dupes(self, dfs):
        ds = UpsertDataset(dfs, "/ds")
        ds.apply("u1", [{"id": 1, "v": 1}])
        ds.apply("u2", [{"id": 1, "v": 2}])
        assert ds.duplicate_key_groups() == 1
        ds.compact()
        assert ds.duplicate_key_groups() == 0

    def test_key_mismatch_rejected(self, dfs):
        UpsertDataset(dfs, "/ds", key="id").apply("u", [{"id": 1}])
        with pytest.raises(StorageError):
            UpsertDataset(dfs, "/ds", key="other").read()


class TestCompactionReaderRace:
    """Compaction must not yank files out from under a live reader."""

    def _seeded(self, dfs):
        ds = UpsertDataset(dfs, "/ds", records_per_part=2)
        ds.apply("u1", [{"id": i, "v": 1} for i in range(5)])
        ds.apply("u2", [{"id": 2, "v": 2}, {"id": 7, "v": 2}])
        return ds

    def test_pre_compaction_manifest_stays_readable(self, dfs):
        ds = self._seeded(dfs)
        # a reader loads the manifest, then a compaction races past it
        snapshot = ds._load_manifest()
        view_before = ds._merged(snapshot)
        stats = ds.compact()
        assert stats.files_retired > 0
        # every file the snapshot references is still on disk...
        for path in snapshot["base"]:
            assert dfs.exists(path)
        for delta in snapshot["deltas"]:
            assert dfs.exists(delta["file"])
        # ...and re-reading through the stale manifest yields the
        # identical pre-compaction view (snapshot isolation)
        assert ds._merged(snapshot) == view_before

    def test_vacuum_reclaims_retired_generation_only(self, dfs):
        ds = self._seeded(dfs)
        old_files = set(ds.live_files())
        before = ds.canonical_bytes()
        ds.compact()
        reclaimed = set(ds.vacuum())
        # vacuum sweeps exactly the retired generation, nothing live
        assert reclaimed == old_files
        for path in ds.live_files():
            assert dfs.exists(path)
        assert ds.canonical_bytes() == before
        assert ds.vacuum() == []  # idempotent: nothing left to reclaim

    def test_vacuum_never_collects_latest_manifest_parts(self, dfs):
        ds = self._seeded(dfs)
        ds.compact()
        ds.apply("u3", [{"id": 9, "v": 3}])  # a post-compaction delta
        live = set(ds.live_files())
        reclaimed = set(ds.vacuum())
        assert reclaimed.isdisjoint(live)
        for path in live:
            assert dfs.exists(path)
