"""Tests for the unified company fact table."""

import pytest

from repro.analysis.facts import build_company_facts


@pytest.fixture(scope="module")
def facts(crawled_platform):
    return build_company_facts(crawled_platform.sc, crawled_platform.dfs)


class TestFactTable:
    def test_one_row_per_company(self, facts, crawled_platform):
        assert facts.count() == len(crawled_platform.world.companies)

    def test_columns_present(self, facts):
        row = facts.collect()[0]
        for column in ("id", "market", "has_facebook", "has_twitter",
                       "has_video", "raised", "num_rounds",
                       "total_funding_usd", "fb_likes", "tw_statuses",
                       "tw_followers"):
            assert column in row

    def test_raised_matches_world(self, facts, crawled_platform):
        world = crawled_platform.world
        for row in facts.collect()[:500]:
            assert row["raised"] \
                == world.companies[row["id"]].raised_funding

    def test_social_metrics_joined(self, facts, crawled_platform):
        world = crawled_platform.world
        rows = {row["id"]: row for row in facts.collect()}
        checked = 0
        for company in world.companies.values():
            if company.facebook_page_id is not None:
                page = world.facebook_pages[company.facebook_page_id]
                assert rows[company.company_id]["fb_likes"] == page.likes
                checked += 1
            if checked > 30:
                break
        assert checked > 0

    def test_no_social_rows_default_zero(self, facts):
        lonely = [row for row in facts.collect()
                  if not row["has_facebook"] and not row["has_twitter"]]
        assert lonely
        assert all(row["fb_likes"] == 0 and row["tw_statuses"] == 0
                   for row in lonely)

    def test_funding_totals(self, facts, crawled_platform):
        world = crawled_platform.world
        for row in facts.collect()[:500]:
            company = world.companies[row["id"]]
            assert row["total_funding_usd"] \
                == sum(r.amount_usd for r in company.rounds)
