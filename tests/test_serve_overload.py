"""The overload contract, end to end (the PR's acceptance criteria).

At 10x the admitted QPS limit with a forced mid-run brownout and
request-path chaos faults, the query tier must:

* shed the excess deterministically and never let the queue exceed its
  bound;
* keep the p99 latency of admitted requests under each class's deadline;
* answer >= 99% of finally-admitted requests (fresh or flagged stale);
* produce byte-identical ServeMetrics on a same-seed rerun.
"""

import pytest

from repro.net.faults import FAULT_BROWNOUT, FaultSchedule
from repro.serve.loadgen import LoadProfile, generate_schedule, run_bench
from repro.serve.service import ServeConfig

QPS_LIMIT = 20.0
QUEUE_DEPTH = 8
OVERLOAD = 10.0
SEED = 42


@pytest.fixture(scope="module")
def serve_platform(crawled_platform):
    """The shared crawled platform with one slow datanode (restored)."""
    for index, node_id in enumerate(sorted(crawled_platform.dfs.datanodes)):
        crawled_platform.dfs.set_datanode_latency(
            node_id, 0.05 if index == 0 else 0.004)
    yield crawled_platform
    for node_id in crawled_platform.dfs.datanodes:
        crawled_platform.dfs.set_datanode_latency(node_id, 0.0)


def _profile(duration_s=3.0):
    return LoadProfile(qps=QPS_LIMIT * OVERLOAD, duration_s=duration_s,
                       seed=SEED)


def _run(platform):
    faults = FaultSchedule.serve_chaos(1.0, seed=7)
    faults.force_window(FAULT_BROWNOUT, start=15, span=12, duration=0.4)
    service = platform.query_service(
        config=ServeConfig(qps_limit=QPS_LIMIT, queue_depth=QUEUE_DEPTH,
                           workers=2),
        faults=faults)
    return run_bench(service, platform.serve_dataset(), _profile()), service


class TestOverloadContract:
    def test_sheds_excess_and_bounds_the_queue(self, serve_platform):
        report, _ = _run(serve_platform)
        assert report.offered > 0
        assert report.shed > 0
        assert report.admitted + report.shed == report.offered
        assert report.max_queue_len <= QUEUE_DEPTH
        # offered ~10x the limit: most of it must be shed at the door
        assert report.shed_fraction > 0.5

    def test_p99_of_admitted_stays_under_each_deadline(self,
                                                       serve_platform):
        report, _ = _run(serve_platform)
        for cls, deadline_s in _profile().deadlines:
            assert report.per_class_p99_s[cls] <= deadline_s, cls

    def test_answers_at_least_99pct_of_admitted(self, serve_platform):
        report, _ = _run(serve_platform)
        assert report.admitted > 0
        assert report.answered_fraction >= 0.99
        # degradation happened (brownout + chaos), yet answers flowed
        assert report.stale_served + sum(
            c["summary_served"]
            for c in report.metrics["per_class"].values()) > 0

    def test_goodput_degrades_smoothly_not_to_zero(self, serve_platform):
        report, _ = _run(serve_platform)
        # goodput stays in the same ballpark as the admitted limit: the
        # service saturates, it does not collapse
        assert report.goodput_qps >= 0.5 * QPS_LIMIT

    def test_health_fsm_reaches_shedding(self, serve_platform):
        report, service = _run(serve_platform)
        assert report.health_state == "shedding"
        assert report.health_transitions >= 1
        assert service.health.state == "shedding"

    def test_hedged_reads_engage_against_the_slow_datanode(
            self, serve_platform):
        report, _ = _run(serve_platform)
        assert report.hedges_launched > 0
        assert report.hedges_won > 0

    def test_same_seed_runs_are_byte_identical(self, serve_platform):
        first, first_service = _run(serve_platform)
        second, second_service = _run(serve_platform)
        assert first_service.metrics.to_json() == \
            second_service.metrics.to_json()
        assert first.to_json() == second.to_json()


class TestLoadGenerator:
    def test_schedule_is_deterministic(self, serve_platform):
        dataset = serve_platform.serve_dataset()
        first = generate_schedule(_profile(), dataset)
        second = generate_schedule(_profile(), dataset)
        assert [(r.kind, r.key, r.priority, r.arrival_s, r.depth)
                for r in first] == \
            [(r.kind, r.key, r.priority, r.arrival_s, r.depth)
             for r in second]

    def test_different_seed_different_schedule(self, serve_platform):
        dataset = serve_platform.serve_dataset()
        base = generate_schedule(_profile(), dataset)
        other = generate_schedule(
            LoadProfile(qps=QPS_LIMIT * OVERLOAD, duration_s=3.0, seed=43),
            dataset)
        assert [(r.kind, r.key) for r in base] != \
            [(r.kind, r.key) for r in other]

    def test_arrivals_sorted_and_inside_duration(self, serve_platform):
        schedule = generate_schedule(_profile(), serve_platform
                                     .serve_dataset())
        arrivals = [r.arrival_s for r in schedule]
        assert arrivals == sorted(arrivals)
        assert 0.0 < arrivals[0] and arrivals[-1] < 3.0
        # ~qps * duration arrivals, Poisson-ish
        assert 0.7 * 600 < len(schedule) < 1.3 * 600

    def test_mixes_cover_kinds_and_classes(self, serve_platform):
        schedule = generate_schedule(_profile(), serve_platform
                                     .serve_dataset())
        kinds = {r.kind for r in schedule}
        classes = {r.priority for r in schedule}
        assert kinds == {"company", "investor", "neighborhood",
                         "community", "engagement"}
        assert classes == {"interactive", "analytics", "bulk"}
        depths = {r.depth for r in schedule if r.kind == "neighborhood"}
        assert depths == {1, 2}
