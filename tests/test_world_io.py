"""Tests for world save/load round-tripping."""

import pytest

from repro.world.config import WorldConfig
from repro.world.generator import generate_world
from repro.world.io import load_world, save_world


@pytest.fixture(scope="module")
def roundtripped(tmp_path_factory, tiny_world):
    path = tmp_path_factory.mktemp("worlds") / "w.json.gz"
    save_world(tiny_world, str(path))
    return load_world(str(path)), path


class TestRoundtrip:
    def test_summary_identical(self, roundtripped, tiny_world):
        loaded, _path = roundtripped
        assert loaded.summary() == tiny_world.summary()

    def test_config_preserved(self, roundtripped, tiny_world):
        loaded, _path = roundtripped
        assert loaded.config.scale == tiny_world.config.scale
        assert loaded.config.seed == tiny_world.config.seed
        assert vars(loaded.config.params) == vars(tiny_world.config.params)

    def test_company_fields(self, roundtripped, tiny_world):
        loaded, _path = roundtripped
        for cid in list(tiny_world.companies)[:50]:
            original = tiny_world.companies[cid]
            copy = loaded.companies[cid]
            assert copy == original

    def test_users_and_edges(self, roundtripped, tiny_world):
        loaded, _path = roundtripped
        uid = next(u.user_id for u in tiny_world.users.values()
                   if u.investments)
        assert loaded.users[uid] == tiny_world.users[uid]
        assert len(loaded.investments) == len(tiny_world.investments)

    def test_planted_communities(self, roundtripped, tiny_world):
        loaded, _path = roundtripped
        assert len(loaded.planted_communities) \
            == len(tiny_world.planted_communities)
        assert loaded.planted_communities[0].member_ids \
            == tiny_world.planted_communities[0].member_ids

    def test_loaded_world_serves_apis(self, roundtripped):
        from repro.sources.hub import SourceHub
        loaded, _path = roundtripped
        hub = SourceHub.from_world(loaded)
        token = hub.angellist.issue_token()
        response = hub.angellist.get("/1/startups",
                                     {"filter": "raising"},
                                     {"Authorization": f"Bearer {token}"})
        assert response.ok

    def test_bad_version_rejected(self, tmp_path, tiny_world):
        import gzip
        import json
        path = tmp_path / "bad.json.gz"
        with gzip.open(path, "wt") as handle:
            json.dump({"format_version": 99}, handle)
        with pytest.raises(ValueError):
            load_world(str(path))
