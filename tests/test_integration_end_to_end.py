"""End-to-end integration: world → crawl → merge → all analyses.

Uses the session-scoped crawled platform and checks the cross-module
contracts the paper's pipeline depends on.
"""

import pytest

from repro.analysis.strength import run_community_study


class TestCrawlToAnalysis:
    def test_crawl_covers_world(self, crawled_platform):
        summary = crawled_platform.crawl_summary
        world = crawled_platform.world
        assert summary.angellist.startups == len(world.companies)
        assert summary.angellist.users == len(world.users)
        assert summary.facebook.fetched == len(world.facebook_pages)
        assert summary.twitter.fetched == len(world.twitter_profiles)

    def test_crawled_graph_equals_ground_truth(self, crawled_platform,
                                               investor_graph):
        truth = {(i.investor_id, i.company_id)
                 for i in crawled_platform.world.investments}
        assert set(investor_graph.edges()) == truth

    def test_engagement_table_consistent_with_truth(self, crawled_platform):
        """The table computed from crawled JSON must match the same table
        computed directly from the ground-truth world."""
        table = crawled_platform.run_plugin("engagement_table")
        world = crawled_platform.world
        fb_truth = sum(1 for c in world.companies.values()
                       if c.facebook_page_id is not None)
        assert table.row("Facebook only").companies == fb_truth
        raised_fb = sum(1 for c in world.companies.values()
                        if c.facebook_page_id is not None
                        and c.raised_funding)
        expected_pct = 100.0 * raised_fb / fb_truth
        assert table.row("Facebook only").success_pct \
            == pytest.approx(expected_pct, abs=1e-9)

    def test_community_study_end_to_end(self, crawled_platform,
                                        investor_graph):
        study = run_community_study(
            investor_graph,
            num_communities=crawled_platform.world.config.num_communities,
            global_pairs=5_000, seed=1, coda_iters=20)
        assert study.coda.num_communities >= 2
        assert study.mean_shared_pct >= study.randomized_mean_shared_pct

    def test_simulated_time_accounts_for_rate_limits(self, crawled_platform):
        """The crawl's simulated duration must reflect throttling: with
        8 AngelList tokens at 1000 req/hr, >8000 requests forces >1 h."""
        crawl = crawled_platform.crawl_summary.angellist
        if crawl.client_stats.requests > 8000:
            assert crawl.sim_duration > 3600.0

    def test_dfs_holds_all_datasets(self, crawled_platform):
        dfs = crawled_platform.dfs
        for directory in ("/crawl/angellist/startups",
                          "/crawl/angellist/users",
                          "/crawl/angellist/follow_edges",
                          "/crawl/angellist/investments",
                          "/crawl/crunchbase/organizations",
                          "/crawl/facebook/pages",
                          "/crawl/twitter/profiles"):
            assert dfs.glob_parts(directory), f"{directory} missing"

    def test_dfs_survives_datanode_failure_mid_analysis(self,
                                                        crawled_platform):
        dfs = crawled_platform.dfs
        dfs.kill_datanode("dn0")
        try:
            table = crawled_platform.run_plugin("engagement_table")
            assert table.total_companies \
                == len(crawled_platform.world.companies)
        finally:
            dfs.restart_datanode("dn0")
