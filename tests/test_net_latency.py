"""Tests for the deterministic per-request latency model."""

import pytest

from repro.net.latency import LatencyModel


class TestLatencyModel:
    def test_same_seed_same_sequence(self):
        first = LatencyModel(base=0.05, jitter=0.1, seed=42)
        second = LatencyModel(base=0.05, jitter=0.1, seed=42)
        samples = [first.sample(i) for i in range(200)]
        assert samples == [second.sample(i) for i in range(200)]

    def test_rerun_of_one_instance_is_stable(self):
        model = LatencyModel(base=0.01, jitter=0.05, seed=7)
        assert [model.sample(i) for i in range(100)] == \
            [model.sample(i) for i in range(100)]

    def test_different_seeds_differ(self):
        a = LatencyModel(base=0.0, jitter=1.0, seed=1)
        b = LatencyModel(base=0.0, jitter=1.0, seed=2)
        assert [a.sample(i) for i in range(50)] != \
            [b.sample(i) for i in range(50)]

    def test_samples_stay_in_band(self):
        model = LatencyModel(base=0.02, jitter=0.08, seed=3)
        for i in range(500):
            assert 0.02 <= model.sample(i) < 0.1 + 1e-9

    def test_zero_jitter_is_constant(self):
        model = LatencyModel(base=0.123, jitter=0.0, seed=9)
        assert {model.sample(i) for i in range(20)} == {0.123}

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(base=-0.01, jitter=0.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(base=0.0, jitter=-0.5)
