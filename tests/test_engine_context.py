"""Tests for the engine context itself."""

import pytest

from repro.engine.context import SparkLiteContext
from repro.util.errors import EngineError


class TestLifecycle:
    def test_context_manager_stops(self):
        with SparkLiteContext(parallelism=2) as sc:
            assert sc.parallelize([1]).count() == 1
        with pytest.raises(EngineError):
            sc.parallelize([1]).count()

    def test_invalid_parallelism(self):
        with pytest.raises(EngineError):
            SparkLiteContext(parallelism=0)

    def test_jobs_counted(self):
        with SparkLiteContext(parallelism=1) as sc:
            rdd = sc.parallelize([1, 2])
            rdd.count()
            rdd.collect()
            assert sc.jobs_run == 2


class TestPartitioning:
    def test_default_partitions_capped_by_data(self):
        with SparkLiteContext(parallelism=8) as sc:
            assert sc.parallelize([1, 2]).num_partitions <= 2

    def test_explicit_partitions(self):
        with SparkLiteContext(parallelism=2) as sc:
            assert sc.parallelize(range(100), 7).num_partitions == 7

    def test_empty_rdd(self):
        with SparkLiteContext(parallelism=2) as sc:
            assert sc.empty().collect() == []

    def test_results_identical_across_parallelism(self):
        data = list(range(500))

        def job(sc):
            return (sc.parallelize(data, 8)
                    .map(lambda x: (x % 7, x))
                    .reduce_by_key(lambda a, b: a + b)
                    .collect_as_map())
        with SparkLiteContext(parallelism=1) as sc1, \
                SparkLiteContext(parallelism=4) as sc4:
            assert job(sc1) == job(sc4)

    def test_deep_lineage_no_recursion_blowup(self):
        with SparkLiteContext(parallelism=2) as sc:
            rdd = sc.parallelize(range(10))
            for _ in range(100):
                rdd = rdd.map(lambda x: x + 1)
            assert rdd.sum() == sum(range(10)) + 10 * 100

    def test_diamond_lineage_computed_once(self):
        with SparkLiteContext(parallelism=2) as sc:
            calls = []
            base = sc.parallelize([1, 2, 3], 1).map(
                lambda x: calls.append(x) or x)
            left = base.map(lambda x: ("l", x))
            right = base.map(lambda x: ("r", x))
            left.union(right).collect()
            assert len(calls) == 3  # base evaluated once per job
