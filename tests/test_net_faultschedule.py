"""Tests for the composable, seed-deterministic FaultSchedule."""

import pytest

from repro.net.faults import (FAULT_BROWNOUT, FAULT_CORRUPT, FAULT_ERROR,
                              FAULT_RESET, FAULT_STORM, FAULT_TIMEOUT,
                              FaultSchedule, FaultSpec)
from repro.net.http import (CorruptPayload, Response, SimServer,
                            STATUS_RESET, STATUS_TIMEOUT, TIMEOUT_HEADER)
from repro.util.clock import SimClock


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("gremlins", 0.1)

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(FAULT_ERROR, 1.0)
        with pytest.raises(ValueError):
            FaultSpec(FAULT_ERROR, -0.1)

    def test_window_needs_span(self):
        with pytest.raises(ValueError):
            FaultSpec(FAULT_BROWNOUT, 0.01)


class TestSchedule:
    def test_none_never_fires(self):
        schedule = FaultSchedule.none()
        assert all(schedule.fault_at(i) is None for i in range(1, 500))
        assert schedule.aggregate_rate == 0.0

    def test_deterministic_per_seed(self):
        a = FaultSchedule.chaos(seed=3)
        b = FaultSchedule.chaos(seed=3)
        decisions_a = [getattr(a.fault_at(i), "kind", None)
                       for i in range(1, 2000)]
        decisions_b = [getattr(b.fault_at(i), "kind", None)
                       for i in range(1, 2000)]
        assert decisions_a == decisions_b

    def test_different_seeds_differ(self):
        a = FaultSchedule.chaos(seed=3)
        b = FaultSchedule.chaos(seed=4)
        assert [getattr(a.fault_at(i), "kind", None)
                for i in range(1, 2000)] \
            != [getattr(b.fault_at(i), "kind", None)
                for i in range(1, 2000)]

    def test_chaos_profile_covers_all_kinds(self):
        schedule = FaultSchedule.chaos(seed=0)
        assert set(schedule.kinds) == {FAULT_ERROR, FAULT_TIMEOUT,
                                       FAULT_RESET, FAULT_CORRUPT,
                                       FAULT_BROWNOUT, FAULT_STORM}
        assert schedule.aggregate_rate >= 0.05

    def test_chaos_empirical_rate_near_nominal(self):
        schedule = FaultSchedule.chaos(seed=9)
        hits = sum(1 for i in range(1, 20_001)
                   if schedule.fault_at(i) is not None)
        assert 0.03 <= hits / 20_000 <= 0.12

    def test_window_spans_consecutive_requests(self):
        schedule = FaultSchedule(
            [FaultSpec(FAULT_BROWNOUT, 0.01, duration=2.0, span=4)], seed=1)
        starts = [i for i in range(1, 5000)
                  if schedule._fraction(FAULT_BROWNOUT + ":start", i) < 0.01]
        assert starts, "seed produced no windows in 5000 requests"
        start = starts[0]
        for i in range(start, start + 4):
            spec = schedule.fault_at(i)
            assert spec is not None and spec.kind == FAULT_BROWNOUT

    def test_from_profile(self):
        assert FaultSchedule.from_profile("none").specs == []
        assert FaultSchedule.from_profile("flaky", seed=2).kinds \
            == [FAULT_ERROR]
        assert len(FaultSchedule.from_profile("chaos", seed=2).specs) == 6
        with pytest.raises(ValueError):
            FaultSchedule.from_profile("mayhem")

    def test_flaky_matches_legacy_single_mode(self):
        schedule = FaultSchedule.flaky(p_error=0.05, seed=8)
        kinds = {spec.kind for i in range(1, 3000)
                 for spec in [schedule.fault_at(i)] if spec is not None}
        assert kinds == {FAULT_ERROR}


class TestInjection:
    def test_error_response_shape(self):
        schedule = FaultSchedule([FaultSpec(FAULT_ERROR, 0.5)], seed=0)
        statuses = {schedule.inject(i).status
                    for i in range(1, 200) if schedule.fault_at(i)}
        assert statuses <= {500, 503} and len(statuses) == 2

    def test_timeout_carries_hang_header(self):
        schedule = FaultSchedule(
            [FaultSpec(FAULT_TIMEOUT, 0.9, duration=45.0)], seed=0)
        index = next(i for i in range(1, 100) if schedule.fault_at(i))
        response = schedule.inject(index)
        assert response.status == STATUS_TIMEOUT
        assert float(response.headers["X-Fault-Hang-S"]) == 45.0

    def test_brownout_and_storm_carry_retry_after(self):
        for kind, status in ((FAULT_BROWNOUT, 503), (FAULT_STORM, 429)):
            schedule = FaultSchedule(
                [FaultSpec(kind, 0.2, duration=7.5, span=2)], seed=0)
            index = next(i for i in range(1, 200) if schedule.fault_at(i))
            response = schedule.inject(index)
            assert response.status == status
            assert float(response.headers["Retry-After"]) == 7.5

    def test_reset_status(self):
        schedule = FaultSchedule([FaultSpec(FAULT_RESET, 0.9)], seed=0)
        index = next(i for i in range(1, 100) if schedule.fault_at(i))
        assert schedule.inject(index).status == STATUS_RESET

    def test_corrupt_is_post_dispatch_only(self):
        schedule = FaultSchedule([FaultSpec(FAULT_CORRUPT, 0.9)], seed=0)
        index = next(i for i in range(1, 100) if schedule.fault_at(i))
        assert schedule.inject(index) is None
        clean = Response.json({"answer": 42, "padding": "x" * 50})
        mangled = schedule.corrupt(index, clean)
        assert isinstance(mangled.body, CorruptPayload)
        assert mangled.headers["X-Fault"] == FAULT_CORRUPT
        # the prefix that "arrived" really is a truncation
        assert '{"answer": 42'.startswith(mangled.body.raw[:13]) \
            or mangled.body.raw.startswith('{"answer": 42')

    def test_corrupt_leaves_errors_alone(self):
        schedule = FaultSchedule([FaultSpec(FAULT_CORRUPT, 0.9)], seed=0)
        index = next(i for i in range(1, 100) if schedule.fault_at(i))
        error = Response.error(503, "down")
        assert schedule.corrupt(index, error) is error


class _PingServer(SimServer):
    name = "ping"

    def __init__(self, clock, faults):
        super().__init__(clock=clock, faults=faults)
        self.route("GET", "/ping", lambda r: Response.json({"pong": True}))


class TestSimServerIntegration:
    def test_hang_consumes_at_most_the_client_budget(self):
        clock = SimClock()
        schedule = FaultSchedule(
            [FaultSpec(FAULT_TIMEOUT, 0.99, duration=45.0)], seed=0)
        server = _PingServer(clock, schedule)
        before = clock.now()
        response = server.get("/ping", headers={TIMEOUT_HEADER: "5.0"})
        assert response.status == STATUS_TIMEOUT
        assert clock.now() - before == pytest.approx(5.0)

    def test_hang_without_budget_sleeps_full_duration(self):
        clock = SimClock()
        schedule = FaultSchedule(
            [FaultSpec(FAULT_TIMEOUT, 0.99, duration=45.0)], seed=0)
        server = _PingServer(clock, schedule)
        before = clock.now()
        assert server.get("/ping").status == STATUS_TIMEOUT
        assert clock.now() - before == pytest.approx(45.0)

    def test_corruption_applies_after_dispatch(self):
        clock = SimClock()
        schedule = FaultSchedule([FaultSpec(FAULT_CORRUPT, 0.99)], seed=0)
        server = _PingServer(clock, schedule)
        response = server.get("/ping")
        assert response.ok
        assert isinstance(response.body, CorruptPayload)

    def test_clean_schedule_passes_through(self):
        clock = SimClock()
        server = _PingServer(clock, FaultSchedule.none())
        assert server.get("/ping").body == {"pong": True}


class TestShardFaults:
    def test_shard_spec_validation(self):
        from repro.net.faults import (FAULT_KILL_SHARD,
                                      FAULT_PARTITION_SHARD,
                                      FAULT_SLOW_REPLICA)
        with pytest.raises(ValueError):
            FaultSpec(FAULT_KILL_SHARD, 0.01)            # needs span
        with pytest.raises(ValueError):
            FaultSpec(FAULT_SLOW_REPLICA, 0.01, span=5)  # needs duration
        spec = FaultSpec(FAULT_PARTITION_SHARD, 0.01, span=5)
        assert spec.span == 5

    def test_shard_specs_partition_away_from_network_specs(self):
        from repro.net.faults import FAULT_KILL_SHARD, FAULT_SLOW
        schedule = FaultSchedule([
            FaultSpec(FAULT_KILL_SHARD, 0.01, span=1),
            FaultSpec(FAULT_SLOW, 0.01, duration=0.05),
            FaultSpec(FAULT_ERROR, 0.01),
        ], seed=0)
        assert [s.kind for s in schedule.shard_specs] == [FAULT_KILL_SHARD]
        assert [s.kind for s in schedule.serve_specs] == [FAULT_SLOW]
        assert [s.kind for s in schedule.specs] == [FAULT_ERROR]
        # shard faults never leak into the network injection path
        assert all(schedule.fault_at(i) is None
                   or schedule.fault_at(i).kind == FAULT_ERROR
                   for i in range(1, 500))

    def test_serve_shard_chaos_profile(self):
        from repro.net.faults import (FAULT_KILL_SHARD,
                                      FAULT_PARTITION_SHARD, FAULT_SLOW,
                                      FAULT_SLOW_REPLICA)
        schedule = FaultSchedule.from_profile("serve-shard-chaos", seed=5)
        assert set(schedule.kinds) == {FAULT_KILL_SHARD,
                                       FAULT_PARTITION_SHARD,
                                       FAULT_SLOW_REPLICA, FAULT_SLOW}
        assert len(schedule.shard_specs) == 3
        with pytest.raises(ValueError):
            FaultSchedule.serve_shard_chaos(intensity=-1.0)

    def test_shard_faults_at_is_deterministic(self):
        a = FaultSchedule.serve_shard_chaos(5.0, seed=3)
        b = FaultSchedule.serve_shard_chaos(5.0, seed=3)
        hits_a = [[(s.kind, w) for s, w in a.shard_faults_at(i)]
                  for i in range(1, 3000)]
        hits_b = [[(s.kind, w) for s, w in b.shard_faults_at(i)]
                  for i in range(1, 3000)]
        assert hits_a == hits_b
        assert any(hits_a), "seed produced no shard faults in 3000 reqs"

    def test_forced_window_covers_exact_span(self):
        from repro.net.faults import FAULT_KILL_SHARD
        schedule = FaultSchedule.none()
        schedule.force_window(FAULT_KILL_SHARD, start=10, span=3)
        for index in (9, 13, 50):
            assert schedule.shard_faults_at(index) == []
        for index in (10, 11, 12):
            hits = schedule.shard_faults_at(index)
            assert len(hits) == 1
            spec, window_start = hits[0]
            assert spec.kind == FAULT_KILL_SHARD
            assert window_start == 10

    def test_window_start_identifies_overlapping_windows(self):
        from repro.net.faults import FAULT_PARTITION_SHARD
        schedule = FaultSchedule.none()
        schedule.force_window(FAULT_PARTITION_SHARD, start=5, span=4)
        schedule.force_window(FAULT_PARTITION_SHARD, start=7, span=4)
        starts = [w for _, w in schedule.shard_faults_at(8)]
        assert starts == [5, 7]


class TestAlertFaults:
    def test_alert_chaos_profile(self):
        from repro.net.faults import (ALERT_FAULTS, FAULT_DROP_ACK,
                                      FAULT_DUP_DELIVER, FAULT_KILL_INGEST,
                                      FAULT_KILL_SUBSCRIBER)
        schedule = FaultSchedule.from_profile("alert-chaos", seed=4)
        assert set(schedule.kinds) == {FAULT_KILL_SUBSCRIBER,
                                       FAULT_DROP_ACK, FAULT_DUP_DELIVER,
                                       FAULT_KILL_INGEST}
        # the delivery faults live on their own tier: they never leak
        # into the network or ingest injection paths
        assert [s.kind for s in schedule.alert_specs] == list(ALERT_FAULTS)
        assert all(s.kind not in ALERT_FAULTS for s in schedule.specs)
        assert all(s.kind not in ALERT_FAULTS
                   for s in schedule.ingest_specs)
        hit = schedule.alert_fault_at
        kinds = {hit(f"t0:default:ntf-x-{i}#a1").kind
                 for i in range(2000)
                 if hit(f"t0:default:ntf-x-{i}#a1") is not None}
        assert kinds == set(ALERT_FAULTS)

    def test_retry_rolls_new_dice(self):
        schedule = FaultSchedule.alert_chaos(1.0, seed=9)
        # some step key that faults on attempt 1 must eventually clear:
        # the attempt number is part of the key, so redelivery is not
        # doomed to repeat the same outcome forever
        for i in range(500):
            if schedule.alert_fault_at(f"s:{i}#a1") is not None:
                outcomes = {schedule.alert_fault_at(f"s:{i}#a{a}") is None
                            for a in range(1, 30)}
                assert True in outcomes
                return
        raise AssertionError("seed produced no alert faults in 500 keys")


class TestKillResumeDeterminism:
    """A resumed process rebuilds its FaultSchedule from (profile, seed)
    alone; every decision — point faults, probabilistic windows, shard
    windows, step-keyed tiers — must be byte-identical to the schedule
    the killed process was using, regardless of query order."""

    PROFILES = ("flaky", "chaos", "chaos-engine", "chaos-ingest",
                "serve-chaos", "serve-shard-chaos", "alert-chaos")

    @staticmethod
    def _trace(schedule, indexes):
        def name(fault):
            return fault.kind if fault is not None else None
        return [(name(schedule.fault_at(i)),
                 name(schedule.serve_fault_at(i)),
                 [(s.kind, w) for s, w in schedule.shard_faults_at(i)],
                 name(schedule.ingest_fault_at(f"day-{i:04d}:snap#s1")),
                 name(schedule.alert_fault_at(f"t:sub:{i}#a1")))
                for i in indexes]

    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("seed", [0, 7, 20160626])
    def test_windows_identical_across_kill_resume(self, profile, seed):
        before = FaultSchedule.from_profile(profile, seed=seed)
        resumed = FaultSchedule.from_profile(profile, seed=seed)
        # the first incarnation walked the stream front to back...
        full = self._trace(before, range(1, 800))
        # ...the resumed one starts mid-stream (where the kill landed)
        # and only later backfills — decisions must not depend on query
        # order or on any wall-clock residue, only on (seed, index)
        tail = self._trace(resumed, range(400, 800))
        head = self._trace(resumed, range(1, 400))
        assert head + tail == full

    def test_decisions_are_pure_functions(self):
        schedule = FaultSchedule.from_profile("alert-chaos", seed=11)
        keys = [f"t:s:{i}#a1" for i in range(300)]
        first = [schedule.alert_fault_at(k) for k in keys]
        second = [schedule.alert_fault_at(k) for k in keys]
        assert [getattr(f, "kind", None) for f in first] == \
               [getattr(f, "kind", None) for f in second]
