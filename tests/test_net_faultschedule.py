"""Tests for the composable, seed-deterministic FaultSchedule."""

import pytest

from repro.net.faults import (FAULT_BROWNOUT, FAULT_CORRUPT, FAULT_ERROR,
                              FAULT_RESET, FAULT_STORM, FAULT_TIMEOUT,
                              FaultSchedule, FaultSpec)
from repro.net.http import (CorruptPayload, Response, SimServer,
                            STATUS_RESET, STATUS_TIMEOUT, TIMEOUT_HEADER)
from repro.util.clock import SimClock


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("gremlins", 0.1)

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(FAULT_ERROR, 1.0)
        with pytest.raises(ValueError):
            FaultSpec(FAULT_ERROR, -0.1)

    def test_window_needs_span(self):
        with pytest.raises(ValueError):
            FaultSpec(FAULT_BROWNOUT, 0.01)


class TestSchedule:
    def test_none_never_fires(self):
        schedule = FaultSchedule.none()
        assert all(schedule.fault_at(i) is None for i in range(1, 500))
        assert schedule.aggregate_rate == 0.0

    def test_deterministic_per_seed(self):
        a = FaultSchedule.chaos(seed=3)
        b = FaultSchedule.chaos(seed=3)
        decisions_a = [getattr(a.fault_at(i), "kind", None)
                       for i in range(1, 2000)]
        decisions_b = [getattr(b.fault_at(i), "kind", None)
                       for i in range(1, 2000)]
        assert decisions_a == decisions_b

    def test_different_seeds_differ(self):
        a = FaultSchedule.chaos(seed=3)
        b = FaultSchedule.chaos(seed=4)
        assert [getattr(a.fault_at(i), "kind", None)
                for i in range(1, 2000)] \
            != [getattr(b.fault_at(i), "kind", None)
                for i in range(1, 2000)]

    def test_chaos_profile_covers_all_kinds(self):
        schedule = FaultSchedule.chaos(seed=0)
        assert set(schedule.kinds) == {FAULT_ERROR, FAULT_TIMEOUT,
                                       FAULT_RESET, FAULT_CORRUPT,
                                       FAULT_BROWNOUT, FAULT_STORM}
        assert schedule.aggregate_rate >= 0.05

    def test_chaos_empirical_rate_near_nominal(self):
        schedule = FaultSchedule.chaos(seed=9)
        hits = sum(1 for i in range(1, 20_001)
                   if schedule.fault_at(i) is not None)
        assert 0.03 <= hits / 20_000 <= 0.12

    def test_window_spans_consecutive_requests(self):
        schedule = FaultSchedule(
            [FaultSpec(FAULT_BROWNOUT, 0.01, duration=2.0, span=4)], seed=1)
        starts = [i for i in range(1, 5000)
                  if schedule._fraction(FAULT_BROWNOUT + ":start", i) < 0.01]
        assert starts, "seed produced no windows in 5000 requests"
        start = starts[0]
        for i in range(start, start + 4):
            spec = schedule.fault_at(i)
            assert spec is not None and spec.kind == FAULT_BROWNOUT

    def test_from_profile(self):
        assert FaultSchedule.from_profile("none").specs == []
        assert FaultSchedule.from_profile("flaky", seed=2).kinds \
            == [FAULT_ERROR]
        assert len(FaultSchedule.from_profile("chaos", seed=2).specs) == 6
        with pytest.raises(ValueError):
            FaultSchedule.from_profile("mayhem")

    def test_flaky_matches_legacy_single_mode(self):
        schedule = FaultSchedule.flaky(p_error=0.05, seed=8)
        kinds = {spec.kind for i in range(1, 3000)
                 for spec in [schedule.fault_at(i)] if spec is not None}
        assert kinds == {FAULT_ERROR}


class TestInjection:
    def test_error_response_shape(self):
        schedule = FaultSchedule([FaultSpec(FAULT_ERROR, 0.5)], seed=0)
        statuses = {schedule.inject(i).status
                    for i in range(1, 200) if schedule.fault_at(i)}
        assert statuses <= {500, 503} and len(statuses) == 2

    def test_timeout_carries_hang_header(self):
        schedule = FaultSchedule(
            [FaultSpec(FAULT_TIMEOUT, 0.9, duration=45.0)], seed=0)
        index = next(i for i in range(1, 100) if schedule.fault_at(i))
        response = schedule.inject(index)
        assert response.status == STATUS_TIMEOUT
        assert float(response.headers["X-Fault-Hang-S"]) == 45.0

    def test_brownout_and_storm_carry_retry_after(self):
        for kind, status in ((FAULT_BROWNOUT, 503), (FAULT_STORM, 429)):
            schedule = FaultSchedule(
                [FaultSpec(kind, 0.2, duration=7.5, span=2)], seed=0)
            index = next(i for i in range(1, 200) if schedule.fault_at(i))
            response = schedule.inject(index)
            assert response.status == status
            assert float(response.headers["Retry-After"]) == 7.5

    def test_reset_status(self):
        schedule = FaultSchedule([FaultSpec(FAULT_RESET, 0.9)], seed=0)
        index = next(i for i in range(1, 100) if schedule.fault_at(i))
        assert schedule.inject(index).status == STATUS_RESET

    def test_corrupt_is_post_dispatch_only(self):
        schedule = FaultSchedule([FaultSpec(FAULT_CORRUPT, 0.9)], seed=0)
        index = next(i for i in range(1, 100) if schedule.fault_at(i))
        assert schedule.inject(index) is None
        clean = Response.json({"answer": 42, "padding": "x" * 50})
        mangled = schedule.corrupt(index, clean)
        assert isinstance(mangled.body, CorruptPayload)
        assert mangled.headers["X-Fault"] == FAULT_CORRUPT
        # the prefix that "arrived" really is a truncation
        assert '{"answer": 42'.startswith(mangled.body.raw[:13]) \
            or mangled.body.raw.startswith('{"answer": 42')

    def test_corrupt_leaves_errors_alone(self):
        schedule = FaultSchedule([FaultSpec(FAULT_CORRUPT, 0.9)], seed=0)
        index = next(i for i in range(1, 100) if schedule.fault_at(i))
        error = Response.error(503, "down")
        assert schedule.corrupt(index, error) is error


class _PingServer(SimServer):
    name = "ping"

    def __init__(self, clock, faults):
        super().__init__(clock=clock, faults=faults)
        self.route("GET", "/ping", lambda r: Response.json({"pong": True}))


class TestSimServerIntegration:
    def test_hang_consumes_at_most_the_client_budget(self):
        clock = SimClock()
        schedule = FaultSchedule(
            [FaultSpec(FAULT_TIMEOUT, 0.99, duration=45.0)], seed=0)
        server = _PingServer(clock, schedule)
        before = clock.now()
        response = server.get("/ping", headers={TIMEOUT_HEADER: "5.0"})
        assert response.status == STATUS_TIMEOUT
        assert clock.now() - before == pytest.approx(5.0)

    def test_hang_without_budget_sleeps_full_duration(self):
        clock = SimClock()
        schedule = FaultSchedule(
            [FaultSpec(FAULT_TIMEOUT, 0.99, duration=45.0)], seed=0)
        server = _PingServer(clock, schedule)
        before = clock.now()
        assert server.get("/ping").status == STATUS_TIMEOUT
        assert clock.now() - before == pytest.approx(45.0)

    def test_corruption_applies_after_dispatch(self):
        clock = SimClock()
        schedule = FaultSchedule([FaultSpec(FAULT_CORRUPT, 0.99)], seed=0)
        server = _PingServer(clock, schedule)
        response = server.get("/ping")
        assert response.ok
        assert isinstance(response.body, CorruptPayload)

    def test_clean_schedule_passes_through(self):
        clock = SimClock()
        server = _PingServer(clock, FaultSchedule.none())
        assert server.get("/ping").body == {"pong": True}


class TestShardFaults:
    def test_shard_spec_validation(self):
        from repro.net.faults import (FAULT_KILL_SHARD,
                                      FAULT_PARTITION_SHARD,
                                      FAULT_SLOW_REPLICA)
        with pytest.raises(ValueError):
            FaultSpec(FAULT_KILL_SHARD, 0.01)            # needs span
        with pytest.raises(ValueError):
            FaultSpec(FAULT_SLOW_REPLICA, 0.01, span=5)  # needs duration
        spec = FaultSpec(FAULT_PARTITION_SHARD, 0.01, span=5)
        assert spec.span == 5

    def test_shard_specs_partition_away_from_network_specs(self):
        from repro.net.faults import FAULT_KILL_SHARD, FAULT_SLOW
        schedule = FaultSchedule([
            FaultSpec(FAULT_KILL_SHARD, 0.01, span=1),
            FaultSpec(FAULT_SLOW, 0.01, duration=0.05),
            FaultSpec(FAULT_ERROR, 0.01),
        ], seed=0)
        assert [s.kind for s in schedule.shard_specs] == [FAULT_KILL_SHARD]
        assert [s.kind for s in schedule.serve_specs] == [FAULT_SLOW]
        assert [s.kind for s in schedule.specs] == [FAULT_ERROR]
        # shard faults never leak into the network injection path
        assert all(schedule.fault_at(i) is None
                   or schedule.fault_at(i).kind == FAULT_ERROR
                   for i in range(1, 500))

    def test_serve_shard_chaos_profile(self):
        from repro.net.faults import (FAULT_KILL_SHARD,
                                      FAULT_PARTITION_SHARD, FAULT_SLOW,
                                      FAULT_SLOW_REPLICA)
        schedule = FaultSchedule.from_profile("serve-shard-chaos", seed=5)
        assert set(schedule.kinds) == {FAULT_KILL_SHARD,
                                       FAULT_PARTITION_SHARD,
                                       FAULT_SLOW_REPLICA, FAULT_SLOW}
        assert len(schedule.shard_specs) == 3
        with pytest.raises(ValueError):
            FaultSchedule.serve_shard_chaos(intensity=-1.0)

    def test_shard_faults_at_is_deterministic(self):
        a = FaultSchedule.serve_shard_chaos(5.0, seed=3)
        b = FaultSchedule.serve_shard_chaos(5.0, seed=3)
        hits_a = [[(s.kind, w) for s, w in a.shard_faults_at(i)]
                  for i in range(1, 3000)]
        hits_b = [[(s.kind, w) for s, w in b.shard_faults_at(i)]
                  for i in range(1, 3000)]
        assert hits_a == hits_b
        assert any(hits_a), "seed produced no shard faults in 3000 reqs"

    def test_forced_window_covers_exact_span(self):
        from repro.net.faults import FAULT_KILL_SHARD
        schedule = FaultSchedule.none()
        schedule.force_window(FAULT_KILL_SHARD, start=10, span=3)
        for index in (9, 13, 50):
            assert schedule.shard_faults_at(index) == []
        for index in (10, 11, 12):
            hits = schedule.shard_faults_at(index)
            assert len(hits) == 1
            spec, window_start = hits[0]
            assert spec.kind == FAULT_KILL_SHARD
            assert window_start == 10

    def test_window_start_identifies_overlapping_windows(self):
        from repro.net.faults import FAULT_PARTITION_SHARD
        schedule = FaultSchedule.none()
        schedule.force_window(FAULT_PARTITION_SHARD, start=5, span=4)
        schedule.force_window(FAULT_PARTITION_SHARD, start=7, span=4)
        starts = [w for _, w in schedule.shard_faults_at(8)]
        assert starts == [5, 7]
