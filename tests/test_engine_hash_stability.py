"""Regression tests for stable shuffle partitioning.

The old ``_hash_partition`` used builtin ``hash``, which is salted per
interpreter for strings (``PYTHONHASHSEED``) — shuffles were
nondeterministic across runs and broken across a process pool, where
the driver and workers would disagree about bucket placement. These
tests pin the replacement: CRC32 of a canonical, type-tagged encoding.
"""

import json
import os
import subprocess
import sys
import zlib

from repro.engine.rdd import _canonical_bytes, _hash_partition, _stable_hash

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_SNIPPET = """
import json
from repro.engine.rdd import _hash_partition
keys = ["alpha", "beta", "community-42", "", "x" * 100, "γ-unicode",
        0, 1, -1, 2 ** 40, 1.5, None, True,
        ("investor", 7), ("a", (2, "b")), b"raw-bytes"]
print(json.dumps([_hash_partition(k, 8) for k in keys]))
"""


def _assignments_in_fresh_interpreter(hash_seed: int):
    env = dict(os.environ, PYTHONHASHSEED=str(hash_seed))
    env["PYTHONPATH"] = (os.path.join(_REPO, "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    proc = subprocess.run([sys.executable, "-c", _SNIPPET], env=env,
                          capture_output=True, text=True, check=True)
    return json.loads(proc.stdout)


class TestCrossInterpreterStability:
    def test_assignment_identical_across_two_interpreters(self):
        """Two interpreters with different hash salts must agree —
        this is exactly the driver/process-pool-worker situation."""
        first = _assignments_in_fresh_interpreter(1)
        second = _assignments_in_fresh_interpreter(424242)
        assert first == second

    def test_in_process_matches_fresh_interpreter(self):
        keys = ["alpha", "beta", "community-42", "", "x" * 100,
                "γ-unicode", 0, 1, -1, 2 ** 40, 1.5, None, True,
                ("investor", 7), ("a", (2, "b")), b"raw-bytes"]
        here = [_hash_partition(k, 8) for k in keys]
        assert here == _assignments_in_fresh_interpreter(7)


class TestHashSemantics:
    def test_equal_numeric_keys_share_a_bucket(self):
        # 1 == 1.0 == True: a reduceByKey must merge them
        for parts in (2, 3, 7, 64):
            assert _hash_partition(1, parts) \
                == _hash_partition(1.0, parts) \
                == _hash_partition(True, parts)
            assert _hash_partition(0, parts) \
                == _hash_partition(0.0, parts) \
                == _hash_partition(-0.0, parts) \
                == _hash_partition(False, parts)

    def test_distinct_types_stay_distinct(self):
        # "1" and 1 are *not* equal; tags keep them apart
        assert _canonical_bytes("1") != _canonical_bytes(1)
        assert _canonical_bytes(None) != _canonical_bytes("None")
        assert _canonical_bytes(("a",)) != _canonical_bytes("a")

    def test_tuple_encoding_unambiguous(self):
        assert _canonical_bytes(("ab", "c")) != _canonical_bytes(("a", "bc"))
        assert _canonical_bytes((1, (2, 3))) != _canonical_bytes(((1, 2), 3))

    def test_frozenset_is_order_independent(self):
        assert _stable_hash(frozenset(["a", "b", "c"])) \
            == _stable_hash(frozenset(["c", "a", "b"]))

    def test_golden_values(self):
        # the encoding itself is part of the on-disk/cross-run contract
        assert _stable_hash("alpha") == zlib.crc32(b"salpha")
        assert _stable_hash(17) == zlib.crc32(b"i17")
        assert _stable_hash(None) == zlib.crc32(b"N")

    def test_buckets_reasonably_balanced(self):
        keys = [f"startup-{i}" for i in range(4000)]
        counts = [0] * 8
        for k in keys:
            counts[_hash_partition(k, 8)] += 1
        assert min(counts) > 300  # perfectly even would be 500
