"""Tests for the significance helpers."""

import numpy as np
import pytest

from repro.metrics.significance import (bootstrap_mean_ci, chi_square_2x2,
                                        odds_ratio, wilson_interval)


class TestChiSquare:
    def test_strong_association_small_p(self):
        # 80/100 vs 10/100 successes
        result = chi_square_2x2(80, 20, 10, 90)
        assert result.p_value < 1e-10

    def test_no_association_large_p(self):
        result = chi_square_2x2(50, 50, 50, 50)
        assert result.p_value > 0.9

    def test_yates_conservative(self):
        with_yates = chi_square_2x2(8, 2, 2, 8, yates=True)
        without = chi_square_2x2(8, 2, 2, 8, yates=False)
        assert with_yates.statistic < without.statistic

    def test_degenerate_margin(self):
        result = chi_square_2x2(0, 0, 5, 5)
        assert result.p_value == 1.0

    def test_negative_cell_rejected(self):
        with pytest.raises(ValueError):
            chi_square_2x2(-1, 1, 1, 1)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            chi_square_2x2(0, 0, 0, 0)

    def test_matches_scipy(self):
        from scipy.stats import chi2_contingency
        ours = chi_square_2x2(30, 70, 12, 88)
        theirs = chi2_contingency([[30, 70], [12, 88]], correction=True)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)


class TestOddsRatio:
    def test_positive_association(self):
        assert odds_ratio(80, 20, 10, 90) > 10

    def test_no_association_near_one(self):
        assert odds_ratio(50, 50, 50, 50) == pytest.approx(1.0, abs=0.05)

    def test_haldane_handles_zero_cells(self):
        value = odds_ratio(10, 0, 0, 10)
        assert np.isfinite(value)
        assert value > 100


class TestWilson:
    def test_contains_proportion(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.30 < hi

    def test_zero_successes(self):
        lo, hi = wilson_interval(0, 50)
        assert lo == 0.0
        assert hi > 0.0

    def test_all_successes(self):
        lo, hi = wilson_interval(50, 50)
        assert hi == 1.0
        assert lo < 1.0

    def test_narrows_with_n(self):
        lo1, hi1 = wilson_interval(10, 100)
        lo2, hi2 = wilson_interval(100, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)


class TestBootstrap:
    def test_contains_true_mean(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(loc=5.0, size=400)
        lo, hi = bootstrap_mean_ci(sample, seed=1)
        assert lo < 5.0 < hi

    def test_deterministic(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_mean_ci(sample, seed=2) \
            == bootstrap_mean_ci(sample, seed=2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
