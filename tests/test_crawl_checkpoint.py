"""Tests for BFS crawl checkpoint/resume."""

import pytest

from repro.crawl.client import ApiClient
from repro.crawl.frontier import BfsCrawler
from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import read_json_dataset
from repro.sources.angellist import AngelListServer
from repro.util.clock import SimClock
from repro.util.errors import CrawlError


def _client(world, clock=None):
    clock = clock or SimClock()
    server = AngelListServer(world, clock=clock)
    from repro.crawl.tokens import TokenPool
    tokens = [server.issue_token(f"t{i}") for i in range(6)]
    return ApiClient(server, clock, token_pool=TokenPool(tokens, clock))


class TestCheckpointing:
    def test_checkpoint_written_after_rounds(self, tiny_world):
        dfs = MiniDfs()
        crawler = BfsCrawler(_client(tiny_world), dfs, checkpoint=True,
                             max_rounds=1)
        crawler.run()
        assert crawler.has_checkpoint()

    def test_resume_requires_checkpoint(self, tiny_world):
        crawler = BfsCrawler(_client(tiny_world), MiniDfs(),
                             checkpoint=True)
        with pytest.raises(CrawlError):
            crawler.run(resume=True)

    def test_resume_completes_interrupted_crawl(self, tiny_world):
        # Reference: one uninterrupted crawl.
        reference = BfsCrawler(_client(tiny_world), MiniDfs()).run()

        # Interrupted after 2 rounds, then resumed on the same DFS.
        dfs = MiniDfs()
        clock = SimClock()
        first = BfsCrawler(_client(tiny_world, clock), dfs,
                           checkpoint=True, max_rounds=2).run()
        assert first.startups < reference.startups  # genuinely cut short

        second = BfsCrawler(_client(tiny_world, clock), dfs,
                            checkpoint=True).run(resume=True)
        assert second.resumed
        assert second.startups == reference.startups
        assert second.users == reference.users
        assert second.follow_edges == reference.follow_edges
        assert second.investment_edges == reference.investment_edges

    def test_resumed_datasets_have_no_duplicates(self, tiny_world):
        dfs = MiniDfs()
        clock = SimClock()
        BfsCrawler(_client(tiny_world, clock), dfs, checkpoint=True,
                   max_rounds=2).run()
        BfsCrawler(_client(tiny_world, clock), dfs,
                   checkpoint=True).run(resume=True)
        records = read_json_dataset(dfs, "/crawl/angellist/startups")
        ids = [r["id"] for r in records]
        assert len(ids) == len(set(ids))
        assert len(ids) == len(tiny_world.companies)

    def test_resumed_result_counts_cumulative(self, tiny_world):
        dfs = MiniDfs()
        clock = SimClock()
        BfsCrawler(_client(tiny_world, clock), dfs, checkpoint=True,
                   max_rounds=1).run()
        result = BfsCrawler(_client(tiny_world, clock), dfs,
                            checkpoint=True).run(resume=True)
        users = read_json_dataset(dfs, "/crawl/angellist/users")
        assert result.users == len(users)

    def test_non_checkpoint_crawl_leaves_no_state(self, tiny_world):
        dfs = MiniDfs()
        crawler = BfsCrawler(_client(tiny_world), dfs)
        crawler.run()
        assert not crawler.has_checkpoint()
