"""Tests for JSON-lines datasets on the DFS."""

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import (JsonLinesWriter, iter_json_dataset,
                                 list_partitions, read_json_dataset,
                                 write_json_dataset)
from repro.util.errors import StorageError


@pytest.fixture()
def dfs():
    return MiniDfs(num_datanodes=3)


class TestWriter:
    def test_roundtrip(self, dfs):
        records = [{"i": i} for i in range(10)]
        with JsonLinesWriter(dfs, "/ds", records_per_part=4) as writer:
            writer.write_all(records)
        assert read_json_dataset(dfs, "/ds") == records

    def test_partition_count(self, dfs):
        with JsonLinesWriter(dfs, "/ds", records_per_part=4) as writer:
            writer.write_all({"i": i} for i in range(10))
        assert len(list_partitions(dfs, "/ds")) == 3  # 4 + 4 + 2

    def test_records_written_counter(self, dfs):
        with JsonLinesWriter(dfs, "/ds", records_per_part=100) as writer:
            writer.write_all({"i": i} for i in range(7))
        assert writer.records_written == 7

    def test_write_after_close_rejected(self, dfs):
        writer = JsonLinesWriter(dfs, "/ds")
        writer.write({"a": 1})
        writer.close()
        with pytest.raises(StorageError):
            writer.write({"a": 2})

    def test_no_records_no_parts(self, dfs):
        with JsonLinesWriter(dfs, "/ds") as writer:
            pass
        assert list_partitions(dfs, "/ds") == []

    def test_invalid_records_per_part(self, dfs):
        with pytest.raises(StorageError):
            JsonLinesWriter(dfs, "/ds", records_per_part=0)


class TestDatasetHelpers:
    def test_write_json_dataset_partitions(self, dfs):
        count = write_json_dataset(dfs, "/d", [{"x": i} for i in range(9)],
                                   partitions=3)
        assert count == 9
        assert len(list_partitions(dfs, "/d")) == 3

    def test_iter_preserves_order(self, dfs):
        records = [{"x": i} for i in range(25)]
        write_json_dataset(dfs, "/d", records, partitions=4)
        assert list(iter_json_dataset(dfs, "/d")) == records

    def test_unicode_payloads(self, dfs):
        records = [{"name": "Müller & Søn", "emoji": "🚀"}]
        write_json_dataset(dfs, "/d", records, partitions=1)
        assert read_json_dataset(dfs, "/d") == records

    def test_invalid_partitions(self, dfs):
        with pytest.raises(StorageError):
            write_json_dataset(dfs, "/d", [{}], partitions=0)
