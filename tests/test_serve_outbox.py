"""Durable at-least-once delivery: dedupe, fencing, quarantine, replay."""

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.net.faults import (FAULT_DROP_ACK, FAULT_DUP_DELIVER,
                              FAULT_KILL_SUBSCRIBER, FaultSchedule,
                              FaultSpec)
from repro.serve.alerting import Notification
from repro.serve.outbox import (DeliveryOutbox, OUTCOME_ACK_DROPPED,
                                OUTCOME_DELIVERED, OUTCOME_FAILED,
                                OUTCOME_FENCED, Subscriber)
from repro.util.clock import SimClock
from repro.util.errors import ConfigError


class ScriptedFaults:
    """alert_fault_at driven by an explicit step-key script."""

    def __init__(self, script):
        self.script = dict(script)

    def alert_fault_at(self, step_key):
        kind = self.script.get(step_key)
        return FaultSpec(kind, 0.5) if kind else None


def _notification(n=1, sid="t0:default", tenant="t0"):
    return Notification(
        id=f"ntf-sub-00000{n}-day-0001:derived-inv:{n}:10",
        sub_id=f"sub-00000{n}", tenant=tenant, subscriber_id=sid,
        kind="company_funding", key=10, unit="day-0001:derived",
        entity=f"inv:{n}:10", payload={"investor_id": n,
                                       "company_id": 10})


@pytest.fixture()
def dfs():
    return MiniDfs(num_datanodes=3)


@pytest.fixture()
def clock():
    return SimClock()


def _outbox(dfs, clock, subscribers=None, **kw):
    subscribers = subscribers if subscribers is not None else {
        "t0:default": Subscriber("t0:default", tenant="t0")}
    return DeliveryOutbox(dfs, clock, subscribers, **kw), subscribers


class TestHappyPath:
    def test_enqueue_then_drain_delivers_once(self, dfs, clock):
        outbox, subs = _outbox(dfs, clock)
        note = _notification()
        assert outbox.enqueue(note)
        assert outbox.pending() == [note.id]
        outbox.drain()
        assert outbox.pending() == []
        assert outbox.delivered_ids() == [note.id]
        assert subs["t0:default"].effects == [note.id]
        assert outbox.stats.delivered == 1

    def test_enqueue_is_idempotent_in_every_state(self, dfs, clock):
        outbox, _ = _outbox(dfs, clock)
        note = _notification()
        assert outbox.enqueue(note)
        assert not outbox.enqueue(note)          # still pending
        outbox.drain()
        assert not outbox.enqueue(note)          # already delivered
        assert outbox.stats.duplicates_suppressed == 2
        assert outbox.delivered_ids() == [note.id]

    def test_unknown_subscriber_rejected(self, dfs, clock):
        outbox, _ = _outbox(dfs, clock, subscribers={})
        note = _notification()
        outbox.enqueue(note)
        with pytest.raises(ConfigError):
            outbox.attempt(note.id)


class TestChaosOutcomes:
    def test_kill_subscriber_retries_with_backoff(self, dfs, clock):
        note = _notification()
        faults = ScriptedFaults(
            {f"t0:default:{note.id}#a1": FAULT_KILL_SUBSCRIBER})
        outbox, subs = _outbox(dfs, clock, faults=faults)
        outbox.enqueue(note)
        assert outbox.attempt(note.id) == OUTCOME_FAILED
        assert subs["t0:default"].received == []
        assert outbox.due() == []                 # backing off
        assert outbox.next_due_at() > clock.now()
        outbox.drain()                            # attempt 2 succeeds
        assert outbox.delivered_ids() == [note.id]
        assert subs["t0:default"].effects == [note.id]

    def test_drop_ack_applies_effect_then_redelivers(self, dfs, clock):
        note = _notification()
        faults = ScriptedFaults(
            {f"t0:default:{note.id}#a1": FAULT_DROP_ACK})
        outbox, subs = _outbox(dfs, clock, faults=faults)
        outbox.enqueue(note)
        assert outbox.attempt(note.id) == OUTCOME_ACK_DROPPED
        # the subscriber saw it, but the marker must not exist yet
        assert subs["t0:default"].effects == [note.id]
        assert outbox.delivered_ids() == []
        outbox.drain()
        # redelivered at-least-once on the channel, once in effect
        assert subs["t0:default"].received == [note.id, note.id]
        assert subs["t0:default"].effects == [note.id]
        assert outbox.delivered_ids() == [note.id]
        assert outbox.stats.effects_deduped == 1

    def test_dup_deliver_dedupes_observable_effect(self, dfs, clock):
        note = _notification()
        faults = ScriptedFaults(
            {f"t0:default:{note.id}#a1": FAULT_DUP_DELIVER})
        outbox, subs = _outbox(dfs, clock, faults=faults)
        outbox.enqueue(note)
        assert outbox.attempt(note.id) == OUTCOME_DELIVERED
        assert subs["t0:default"].received == [note.id, note.id]
        assert subs["t0:default"].effects == [note.id]
        assert outbox.stats.dup_deliveries == 1


class TestFencing:
    def test_lost_lease_blocks_the_marker(self, dfs, clock):
        outbox, subs = _outbox(dfs, clock)
        note = _notification()
        outbox.enqueue(note)
        # a rival delivery worker holds this subscriber's lease
        rival = outbox.leases.acquire_lease("t0:default", "outbox-2")
        assert rival is not None
        assert outbox.attempt(note.id) == OUTCOME_FENCED
        assert outbox.delivered_ids() == []
        assert outbox.pending() == [note.id]
        assert outbox.stats.fenced == 1
        # rival lets go; the redelivery lands under a higher epoch
        outbox.leases.release(rival)
        assert outbox.attempt(note.id) == OUTCOME_DELIVERED


class TestQuarantine:
    def test_poison_subscriber_quarantined_without_stall(self, dfs,
                                                         clock):
        subs = {"t0:poison": Subscriber("t0:poison", tenant="t0",
                                        poison=True),
                "t1:default": Subscriber("t1:default", tenant="t1")}
        outbox, _ = _outbox(dfs, clock, subscribers=subs,
                            max_delivery_attempts=3)
        bad = _notification(1, sid="t0:poison")
        good = _notification(2, sid="t1:default", tenant="t1")
        outbox.enqueue(bad)
        outbox.enqueue(good)
        outbox.drain()
        # the healthy subscriber was never held hostage
        assert outbox.delivered_ids() == [good.id]
        assert subs["t1:default"].effects == [good.id]
        # the poison one is parked with its letters, not retried forever
        assert outbox.is_quarantined("t0:poison")
        assert outbox.quarantined() == {"t0:poison": [bad.id]}
        assert outbox.stats.attempts == 3 + 1
        assert outbox.due() == []

    def test_quarantine_parks_all_pending_of_that_subscriber(self, dfs,
                                                             clock):
        subs = {"t0:poison": Subscriber("t0:poison", tenant="t0",
                                        poison=True)}
        outbox, _ = _outbox(dfs, clock, subscribers=subs,
                            max_delivery_attempts=2)
        first = _notification(1, sid="t0:poison")
        second = _notification(2, sid="t0:poison")
        outbox.enqueue(first)
        outbox.enqueue(second)
        outbox.drain()
        parked = outbox.quarantined()["t0:poison"]
        assert sorted(parked) == sorted([first.id, second.id])
        assert outbox.pending() == []
        # a replayed enqueue of a quarantined id stays a no-op
        assert not outbox.enqueue(first)


class TestDurability:
    def test_crash_between_effect_and_marker_redelivers(self, dfs,
                                                        clock):
        note = _notification()
        faults = ScriptedFaults(
            {f"t0:default:{note.id}#a1": FAULT_DROP_ACK})
        outbox, subs = _outbox(dfs, clock, faults=faults)
        outbox.enqueue(note)
        outbox.attempt(note.id)
        # the process dies; a fresh outbox resumes from the pending dir
        resumed = DeliveryOutbox(dfs, clock, subs, owner="outbox-2")
        assert resumed.pending() == [note.id]
        resumed.drain()
        assert resumed.delivered_ids() == [note.id]
        assert subs["t0:default"].effects == [note.id]

    def test_defer_is_not_a_failed_attempt(self, dfs, clock):
        outbox, _ = _outbox(dfs, clock)
        note = _notification()
        outbox.enqueue(note)
        outbox.defer(note.id, clock.now() + 30.0)
        assert outbox.due() == []
        assert outbox._load_pending(note.id)["attempts"] == 0
        assert outbox.stats.deferred_fair_share == 1
        clock.sleep(31.0)
        assert outbox.due() == [note.id]


class TestDeterminism:
    def test_backoff_is_seeded_and_capped(self, dfs, clock):
        outbox, _ = _outbox(dfs, clock, seed=7, retry_base_s=5.0,
                            retry_max_s=40.0)
        other, _ = _outbox(MiniDfs(num_datanodes=3), SimClock(), seed=7,
                           retry_base_s=5.0, retry_max_s=40.0)
        delays = [outbox.backoff_s("ntf-x", a) for a in range(1, 8)]
        assert delays == [other.backoff_s("ntf-x", a)
                          for a in range(1, 8)]
        assert all(d <= 40.0 for d in delays)
        assert delays[0] >= 5.0

    def _chaos_run(self, seed):
        dfs, clock = MiniDfs(num_datanodes=3), SimClock()
        subs = {"t0:default": Subscriber("t0:default", tenant="t0"),
                "t1:default": Subscriber("t1:default", tenant="t1")}
        outbox = DeliveryOutbox(
            dfs, clock, subs, seed=seed,
            faults=FaultSchedule.alert_chaos(1.0, seed=seed),
            max_delivery_attempts=6)
        for n in range(1, 9):
            sid = "t0:default" if n % 2 else "t1:default"
            outbox.enqueue(_notification(n, sid=sid,
                                         tenant=sid.split(":")[0]))
        outbox.drain()
        effects = {sid: list(s.effects) for sid, s in subs.items()}
        return outbox.log_json(), effects

    def test_same_seed_chaos_runs_are_byte_identical(self):
        log_a, effects_a = self._chaos_run(seed=3)
        log_b, effects_b = self._chaos_run(seed=3)
        assert log_a == log_b
        assert effects_a == effects_b
        log_c, _ = self._chaos_run(seed=4)
        assert log_c != log_a  # the seed actually steers the chaos
