"""Tests for the resilient API client."""

import pytest

from repro.crawl.client import (ApiClient, AUTH_BEARER,
                                AUTH_QUERY_ACCESS_TOKEN)
from repro.crawl.tokens import TokenPool
from repro.net.http import Response, SimServer
from repro.net.faults import FaultPlan
from repro.util.clock import SimClock
from repro.util.errors import AuthError, CrawlError, NotFoundError


class _EchoServer(SimServer):
    """Accepts token 'good'; optional scripted failures."""

    name = "echo"

    def __init__(self, clock, fail_times=0, faults=None):
        super().__init__(clock=clock, faults=faults or FaultPlan.none())
        self.fail_times = fail_times
        self.valid_tokens = {"good"}
        self.route("GET", "/ok", lambda r: Response.json({"yes": True}))
        self.route("GET", "/flaky", self._flaky)
        self.route("GET", "/gone", lambda r: Response.error(404, "nope"))
        self.route("GET", "/teapot", lambda r: Response.error(418, "tea"))

    def authorize(self, request):
        if request.token not in self.valid_tokens:
            return Response.error(401, "bad token")
        return None

    def _flaky(self, request):
        if self.fail_times > 0:
            self.fail_times -= 1
            return Response.error(503, "try later")
        return Response.json({"recovered": True})


@pytest.fixture()
def clock():
    return SimClock()


class TestBasics:
    def test_success(self, clock):
        client = ApiClient(_EchoServer(clock), clock, token="good")
        assert client.get("/ok") == {"yes": True}
        assert client.stats.successes == 1

    def test_needs_credential_source(self, clock):
        with pytest.raises(CrawlError):
            ApiClient(_EchoServer(clock), clock)

    def test_pool_and_token_exclusive(self, clock):
        pool = TokenPool(["good"], clock)
        with pytest.raises(CrawlError):
            ApiClient(_EchoServer(clock), clock, token="good",
                      token_pool=pool)

    def test_not_found_raises_by_default(self, clock):
        client = ApiClient(_EchoServer(clock), clock, token="good")
        with pytest.raises(NotFoundError):
            client.get("/gone")

    def test_allow_not_found_returns_none(self, clock):
        client = ApiClient(_EchoServer(clock), clock, token="good")
        assert client.get("/gone", allow_not_found=True) is None
        assert client.stats.not_found == 1

    def test_unexpected_status_raises(self, clock):
        client = ApiClient(_EchoServer(clock), clock, token="good")
        with pytest.raises(CrawlError):
            client.get("/teapot")


class TestRetries:
    def test_transient_failures_retried(self, clock):
        server = _EchoServer(clock, fail_times=3)
        client = ApiClient(server, clock, token="good", max_retries=5)
        assert client.get("/flaky") == {"recovered": True}
        assert client.stats.retries == 3
        assert client.stats.slept_seconds > 0

    def test_budget_exhaustion_raises(self, clock):
        server = _EchoServer(clock, fail_times=10)
        client = ApiClient(server, clock, token="good", max_retries=2)
        with pytest.raises(CrawlError):
            client.get("/flaky")

    def test_backoff_grows(self, clock):
        server = _EchoServer(clock, fail_times=3)
        client = ApiClient(server, clock, token="good", max_retries=5,
                           backoff_base=1.0)
        client.get("/flaky")
        # 1 + 2 + 4 seconds of exponential backoff
        assert client.stats.slept_seconds == pytest.approx(7.0)


class TestAuthRefresh:
    def test_refresh_on_401(self, clock):
        server = _EchoServer(clock)
        calls = []

        def refresher():
            calls.append(1)
            if len(calls) == 1:
                return "stale"
            server.valid_tokens.add("fresh")
            return "fresh"

        client = ApiClient(server, clock, token_refresher=refresher)
        assert client.get("/ok") == {"yes": True}
        assert client.stats.auth_refreshes >= 1

    def test_hard_auth_failure(self, clock):
        client = ApiClient(_EchoServer(clock), clock, token="bad")
        with pytest.raises(AuthError):
            client.get("/ok")


class TestPaged:
    def test_iterates_pages(self, clock, tiny_world):
        from repro.sources.angellist import AngelListServer
        server = AngelListServer(tiny_world, clock=clock)
        client = ApiClient(server, clock,
                           token=server.issue_token("t"))
        items = list(client.paged("/1/startups", {"filter": "raising"},
                                  items_key="startups"))
        raising = sum(1 for c in tiny_world.companies.values()
                      if c.currently_raising)
        assert len(items) == raising
