"""Tests for the bipartite investment graph."""

import pytest

from repro.graph.bipartite import BipartiteGraph

TOY_EDGES = [
    (1, 101), (1, 102), (1, 103),
    (2, 101), (2, 102),
    (3, 104),
]


@pytest.fixture()
def toy():
    return BipartiteGraph(TOY_EDGES)


class TestConstruction:
    def test_counts(self, toy):
        assert toy.num_investors == 3
        assert toy.num_companies == 4
        assert toy.num_edges == 6

    def test_duplicates_dropped(self):
        graph = BipartiteGraph([(1, 101), (1, 101), (1, 102)])
        assert graph.num_edges == 2

    def test_portfolio_and_backers(self, toy):
        assert toy.portfolio(1) == {101, 102, 103}
        assert toy.backers(101) == {1, 2}
        assert toy.portfolio(99) == set()

    def test_degrees(self, toy):
        assert toy.out_degree(1) == 3
        assert toy.in_degree(101) == 2
        assert sorted(toy.out_degrees().tolist()) == [1, 2, 3]

    def test_mean_investors_per_company(self, toy):
        assert toy.mean_investors_per_company == pytest.approx(6 / 4)

    def test_empty_graph(self):
        graph = BipartiteGraph([])
        assert graph.num_investors == 0
        assert graph.mean_investors_per_company == 0.0
        assert graph.degree_concentration()[0].investor_fraction == 0.0


class TestFiltering:
    def test_filter_investors(self, toy):
        filtered = toy.filter_investors(2)
        assert filtered.investors == [1, 2]
        assert filtered.num_edges == 5

    def test_filter_drops_orphan_companies(self, toy):
        filtered = toy.filter_investors(3)
        assert filtered.companies == [101, 102, 103]


class TestConcentration:
    def test_rows(self, toy):
        rows = {r.min_degree: r for r in toy.degree_concentration((2, 3))}
        assert rows[2].investor_fraction == pytest.approx(2 / 3)
        assert rows[2].edge_fraction == pytest.approx(5 / 6)
        assert rows[3].investor_fraction == pytest.approx(1 / 3)
        assert rows[3].edge_fraction == pytest.approx(3 / 6)

    def test_fractions_decrease_with_threshold(self, investor_graph):
        rows = investor_graph.degree_concentration((1, 2, 3, 4, 5))
        inv_fractions = [r.investor_fraction for r in rows]
        edge_fractions = [r.edge_fraction for r in rows]
        assert inv_fractions == sorted(inv_fractions, reverse=True)
        assert edge_fractions == sorted(edge_fractions, reverse=True)

    def test_concentration_property(self, investor_graph):
        """Heavy-hitter investors account for disproportionate edges."""
        for row in investor_graph.degree_concentration((3,)):
            assert row.edge_fraction > row.investor_fraction


class TestProjection:
    def test_weights_count_shared_companies(self, toy):
        weights = toy.investor_projection()
        assert weights[(1, 2)] == 2
        assert (1, 3) not in weights

    def test_projection_symmetric_keys_ordered(self, toy):
        assert all(a < b for a, b in toy.investor_projection())


class TestNetworkx:
    def test_roundtrip_counts(self, toy):
        nx_graph = toy.to_networkx()
        assert nx_graph.number_of_nodes() == 7
        assert nx_graph.number_of_edges() == 6

    def test_bipartite_attribute(self, toy):
        nx_graph = toy.to_networkx()
        assert nx_graph.nodes[("i", 1)]["bipartite"] == 0
        assert nx_graph.nodes[("c", 101)]["bipartite"] == 1
