"""Tests that the generated world matches its calibration targets.

Statistical assertions use wide tolerances — the point is that the
*shape* is right at tiny scale, while EXPERIMENTS.md validates the
precise numbers at benchmark scale.
"""

import numpy as np
import pytest

from repro.world.config import WorldConfig
from repro.world.generator import generate_world
from repro.util.errors import ConfigError


class TestConfig:
    def test_scale_bounds(self):
        with pytest.raises(ConfigError):
            WorldConfig(scale=0.0)
        with pytest.raises(ConfigError):
            WorldConfig(scale=1.5)

    def test_paper_scale_counts(self):
        config = WorldConfig.paper()
        assert config.num_companies == 744_036
        assert config.num_users == 1_109_441

    def test_scaled_counts_proportional(self):
        config = WorldConfig(scale=0.1)
        assert config.num_companies == pytest.approx(74_404, abs=2)

    def test_presets_ordering(self):
        assert WorldConfig.tiny().num_companies \
            < WorldConfig.small().num_companies \
            < WorldConfig.default().num_companies


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = generate_world(WorldConfig.tiny(seed=3))
        b = generate_world(WorldConfig.tiny(seed=3))
        assert a.summary() == b.summary()
        assert [i.company_id for i in a.investments] \
            == [i.company_id for i in b.investments]

    def test_different_seed_different_world(self):
        a = generate_world(WorldConfig.tiny(seed=3))
        b = generate_world(WorldConfig.tiny(seed=4))
        assert [i.company_id for i in a.investments] \
            != [i.company_id for i in b.investments]


class TestPopulations(object):
    def test_counts(self, tiny_world):
        config = tiny_world.config
        assert len(tiny_world.companies) == config.num_companies
        assert len(tiny_world.users) == config.num_users

    def test_role_fractions(self, tiny_world):
        users = list(tiny_world.users.values())
        investors = sum(1 for u in users if "investor" in u.roles)
        founders = sum(1 for u in users if "founder" in u.roles)
        assert investors / len(users) == pytest.approx(0.043, abs=0.015)
        assert founders / len(users) == pytest.approx(0.183, abs=0.04)

    def test_social_presence_rates(self, tiny_world):
        n = len(tiny_world.companies)
        fb = sum(1 for c in tiny_world.companies.values()
                 if c.facebook_page_id is not None)
        tw = sum(1 for c in tiny_world.companies.values()
                 if c.twitter_profile_id is not None)
        assert fb / n == pytest.approx(0.0507, abs=0.02)
        assert tw / n == pytest.approx(0.0948, abs=0.025)

    def test_fb_tw_strongly_correlated(self, tiny_world):
        both = sum(1 for c in tiny_world.companies.values()
                   if c.facebook_page_id is not None
                   and c.twitter_profile_id is not None)
        fb = sum(1 for c in tiny_world.companies.values()
                 if c.facebook_page_id is not None)
        assert both / max(1, fb) > 0.7  # P(tw|fb) ≈ 0.86


class TestInvestments:
    def test_long_tail_shape(self, tiny_world):
        counts = [len(u.investments) for u in tiny_world.users.values()
                  if u.investments]
        assert np.median(counts) == 1.0
        assert 2.0 < np.mean(counts) < 5.5
        assert max(counts) > 10 * np.median(counts)

    def test_investment_edges_consistent(self, tiny_world):
        edge_set = {(i.investor_id, i.company_id)
                    for i in tiny_world.investments}
        from_users = {(u.user_id, c) for u in tiny_world.users.values()
                      for c in u.investments}
        assert edge_set == from_users

    def test_only_investors_invest(self, tiny_world):
        for user in tiny_world.users.values():
            if user.investments:
                assert user.is_investor


class TestSuccessModel:
    def test_social_presence_lifts_success(self, tiny_world):
        companies = list(tiny_world.companies.values())
        social = [c for c in companies if c.facebook_page_id is not None
                  or c.twitter_profile_id is not None]
        nosocial = [c for c in companies if c.facebook_page_id is None
                    and c.twitter_profile_id is None]
        rate_social = np.mean([c.raised_funding for c in social])
        rate_none = np.mean([c.raised_funding for c in nosocial])
        assert rate_social > 5 * rate_none

    def test_raised_companies_have_rounds_and_crunchbase(self, tiny_world):
        for company in tiny_world.companies.values():
            if company.raised_funding:
                assert company.rounds
                assert company.crunchbase_id is not None

    def test_unraised_companies_have_no_rounds(self, tiny_world):
        for company in tiny_world.companies.values():
            if not company.raised_funding:
                assert company.rounds == []


class TestFollowGraph:
    def test_every_company_has_a_follower(self, tiny_world):
        followers = tiny_world.company_followers()
        assert all(followers[cid] for cid in tiny_world.companies)

    def test_every_user_follows_something(self, tiny_world):
        assert all(u.follows_companies for u in tiny_world.users.values())

    def test_investors_follow_their_investments(self, tiny_world):
        for user in tiny_world.users.values():
            if user.investments:
                assert set(user.investments) <= set(user.follows_companies)

    def test_follower_counts_cached_correctly(self, tiny_world):
        followers = tiny_world.company_followers()
        for cid, company in list(tiny_world.companies.items())[:100]:
            assert company.follower_count == len(followers[cid])


class TestPlantedCommunities:
    def test_count_matches_config(self, tiny_world):
        assert len(tiny_world.planted_communities) \
            == tiny_world.config.num_communities

    def test_members_are_investors(self, tiny_world):
        for community in tiny_world.planted_communities:
            for uid in community.member_ids:
                assert tiny_world.users[uid].is_investor

    def test_herd_strength_varies(self, tiny_world):
        strengths = [c.herd_strength
                     for c in tiny_world.planted_communities]
        assert max(strengths) > 0.5
        assert min(strengths) < 0.1

    def test_membership_backrefs(self, tiny_world):
        for community in tiny_world.planted_communities:
            for uid in community.member_ids:
                assert community.community_id in \
                    tiny_world.users[uid].community_ids
