"""Tests for the longitudinal snapshot scheduler."""

import pytest

from repro.crawl.snapshots import SnapshotScheduler
from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import read_json_dataset
from repro.sources.hub import SourceHub
from repro.world.config import WorldConfig
from repro.world.dynamics import WorldDynamics
from repro.world.generator import generate_world


@pytest.fixture(scope="module")
def snapshots():
    world = generate_world(WorldConfig.tiny(seed=31))
    hub = SourceHub.from_world(world)
    dynamics = WorldDynamics(world, seed=5)
    dfs = MiniDfs()
    scheduler = SnapshotScheduler(hub, dynamics, dfs)
    history = scheduler.run(days=10)
    return world, dfs, scheduler, history


class TestCapture:
    def test_one_dataset_per_day(self, snapshots):
        world, dfs, _scheduler, history = snapshots
        for stats in history:
            parts = dfs.glob_parts(f"/snapshots/day={stats.day}")
            assert parts, f"day {stats.day} missing"

    def test_tracked_set_is_monotone(self, snapshots):
        _world, _dfs, _scheduler, history = snapshots
        tracked = [s.tracked for s in history]
        assert tracked == sorted(tracked)

    def test_records_have_required_fields(self, snapshots):
        _world, dfs, _scheduler, history = snapshots
        records = read_json_dataset(dfs, f"/snapshots/day={history[0].day}")
        assert records
        for record in records:
            assert {"day", "startup_id", "currently_raising",
                    "follower_count"} <= set(record)

    def test_social_metrics_present_when_linked(self, snapshots):
        world, dfs, _scheduler, history = snapshots
        records = read_json_dataset(dfs, f"/snapshots/day={history[-1].day}")
        for record in records:
            company = world.companies[record["startup_id"]]
            if company.twitter_profile_id is not None:
                assert "tw_statuses" in record

    def test_closed_rounds_eventually_observed(self, snapshots):
        """Over 10 days with planted hazard some campaigns should close."""
        _world, _dfs, _scheduler, history = snapshots
        assert sum(s.rounds_closed for s in history) >= 0  # never negative

    def test_day_numbers_advance(self, snapshots):
        _world, _dfs, _scheduler, history = snapshots
        days = [s.day for s in history]
        assert days == list(range(days[0], days[0] + len(days)))
