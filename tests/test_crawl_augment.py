"""Tests for the CrunchBase augmentation pass."""

import pytest

from repro.crawl.augment import CrunchBaseAugmenter
from repro.crawl.client import ApiClient, AUTH_QUERY_USER_KEY
from repro.dfs.jsonlines import read_json_dataset
from repro.sources.crunchbase import CrunchBaseServer


@pytest.fixture(scope="module")
def augmented(crawled_platform):
    """Reuse the platform's already-run augmentation."""
    return crawled_platform


class TestMatching:
    def test_all_crunchbase_companies_matched(self, augmented):
        result = augmented.crawl_summary.crunchbase
        expected = sum(1 for c in augmented.world.companies.values()
                       if c.crunchbase_id is not None)
        assert result.records == expected

    def test_url_and_search_paths_both_used(self, augmented):
        result = augmented.crawl_summary.crunchbase
        assert result.matched_by_url > 0
        assert result.matched_by_search > 0

    def test_url_fraction_tracks_config(self, augmented):
        result = augmented.crawl_summary.crunchbase
        fraction = result.matched_by_url / result.matched
        expected = augmented.world.config.p_crunchbase_url_on_angellist
        assert abs(fraction - expected) < 0.22

    def test_unmatched_companies_lack_crunchbase(self, augmented):
        result = augmented.crawl_summary.crunchbase
        without = sum(1 for c in augmented.world.companies.values()
                      if c.crunchbase_id is None)
        assert result.unmatched == without


class TestOutputDataset:
    def test_records_carry_angellist_id(self, augmented):
        records = read_json_dataset(augmented.dfs,
                                    "/crawl/crunchbase/organizations")
        assert records
        assert all("angellist_id" in r for r in records)

    def test_funding_rounds_match_world(self, augmented):
        records = read_json_dataset(augmented.dfs,
                                    "/crawl/crunchbase/organizations")
        world = augmented.world
        for record in records[:50]:
            company = world.companies[record["angellist_id"]]
            assert record["num_funding_rounds"] == len(company.rounds)

    def test_successful_companies_have_rounds(self, augmented):
        records = read_json_dataset(augmented.dfs,
                                    "/crawl/crunchbase/organizations")
        world = augmented.world
        for record in records:
            company = world.companies[record["angellist_id"]]
            if company.raised_funding:
                assert record["num_funding_rounds"] >= 1
