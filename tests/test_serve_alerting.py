"""Incremental standing-query evaluation vs the full-rescan oracle."""

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.dfs.upsert import UpsertDataset
from repro.serve.alerting import (AlertEvaluator, PredicateIndex,
                                  notification_id, rescan_oracle)
from repro.serve.subscriptions import (KIND_COMMUNITY_INVESTOR,
                                       KIND_COMPANY_FUNDING,
                                       KIND_NEIGHBORHOOD_FOLLOW,
                                       SubscriptionRegistry)


class FakeDataset:
    """The two corpus views the evaluator consults."""

    def __init__(self, community_of=None, follows_out=None):
        self.community_of = community_of or {}
        self.follows_out = follows_out or {}


class FakeMaintainer:
    """Derived upsert datasets shaped like DerivedMaintainer's."""

    def __init__(self, dfs):
        self.investment_edges = UpsertDataset(
            dfs, "/ingest/derived/investment_edges",
            key=("investor_id", "company_id"))
        self.follow_edges = UpsertDataset(
            dfs, "/ingest/derived/follow_edges",
            key=("src_user", "dst_type", "dst_id"))

    def land(self, unit, invest=(), follows=()):
        self.investment_edges.apply(f"{unit}:investments", list(invest))
        self.follow_edges.apply(f"{unit}:follows", list(follows))


def _invest(investor, company):
    return {"investor_id": investor, "company_id": company}


def _follow(src, dst, dst_type="user"):
    return {"src_user": src, "dst_type": dst_type, "dst_id": dst}


@pytest.fixture()
def dfs():
    return MiniDfs(num_datanodes=3)


@pytest.fixture()
def registry(dfs):
    return SubscriptionRegistry(dfs).open()


@pytest.fixture()
def maintainer(dfs):
    return FakeMaintainer(dfs)


class TestMatching:
    def test_company_funding_matches_delta_only(self, registry,
                                                maintainer):
        registry.register("t0", KIND_COMPANY_FUNDING, 10)
        evaluator = AlertEvaluator(registry, FakeDataset())
        maintainer.land("day-0001:derived",
                        invest=[_invest(1, 10), _invest(2, 99)])
        hits = evaluator.on_derived_commit("day-0001:derived", {},
                                           maintainer)
        assert [n.entity for n in hits] == ["inv:1:10"]
        assert hits[0].id == notification_id("sub-000001",
                                             "day-0001:derived",
                                             "inv:1:10")
        assert evaluator.stats.records_scanned == 2  # the delta, only

    def test_community_investor_uses_corpus_labels(self, registry,
                                                   maintainer):
        registry.register("t0", KIND_COMMUNITY_INVESTOR, 4)
        dataset = FakeDataset(community_of={1: 4, 2: 8})
        evaluator = AlertEvaluator(registry, dataset)
        maintainer.land("day-0001:derived",
                        invest=[_invest(1, 50), _invest(2, 50),
                                _invest(3, 50)])
        hits = evaluator.on_derived_commit("day-0001:derived", {},
                                           maintainer)
        assert [n.entity for n in hits] == ["inv:1:50"]

    def test_neighborhood_follow_watches_one_hop(self, registry,
                                                 maintainer):
        registry.register("t0", KIND_NEIGHBORHOOD_FOLLOW, 1)
        dataset = FakeDataset(
            follows_out={1: [("user", 2), ("startup", 3)]})
        evaluator = AlertEvaluator(registry, dataset)
        maintainer.land(
            "day-0001:derived",
            follows=[_follow(9, 1),            # into the subscriber
                     _follow(9, 2),            # into a followee
                     _follow(9, 3),            # startup 3: not a user
                     _follow(9, 7)])           # outside the neighborhood
        hits = evaluator.on_derived_commit("day-0001:derived", {},
                                           maintainer)
        assert sorted(n.entity for n in hits) == ["fol:9:1", "fol:9:2"]

    def test_non_user_follow_targets_ignored(self, registry, maintainer):
        registry.register("t0", KIND_NEIGHBORHOOD_FOLLOW, 5)
        evaluator = AlertEvaluator(registry, FakeDataset())
        maintainer.land("day-0001:derived",
                        follows=[_follow(1, 5, dst_type="startup")])
        assert evaluator.on_derived_commit("day-0001:derived", {},
                                           maintainer) == []


class TestLifecycleAndIndex:
    def test_paused_sub_suppressed_at_match_time(self, registry,
                                                 maintainer):
        sub = registry.register("t0", KIND_COMPANY_FUNDING, 10)
        evaluator = AlertEvaluator(registry, FakeDataset())
        maintainer.land("day-0001:derived", invest=[_invest(1, 10)])
        assert len(evaluator.on_derived_commit("day-0001:derived", {},
                                               maintainer)) == 1
        registry.pause(sub.sub_id)
        maintainer.land("day-0002:derived", invest=[_invest(2, 10)])
        assert evaluator.on_derived_commit("day-0002:derived", {},
                                           maintainer) == []
        registry.resume(sub.sub_id)
        maintainer.land("day-0003:derived", invest=[_invest(3, 10)])
        assert len(evaluator.on_derived_commit("day-0003:derived", {},
                                               maintainer)) == 1

    def test_index_rebuilds_only_when_registry_moves(self, registry,
                                                     maintainer):
        registry.register("t0", KIND_COMPANY_FUNDING, 10)
        evaluator = AlertEvaluator(registry, FakeDataset())
        maintainer.land("day-0001:derived", invest=[_invest(1, 10)])
        maintainer.land("day-0002:derived", invest=[_invest(2, 10)])
        evaluator.on_derived_commit("day-0001:derived", {}, maintainer)
        evaluator.on_derived_commit("day-0002:derived", {}, maintainer)
        assert evaluator.stats.index_rebuilds == 1
        registry.register("t0", KIND_COMPANY_FUNDING, 11)
        maintainer.land("day-0003:derived", invest=[_invest(1, 11)])
        hits = evaluator.on_derived_commit("day-0003:derived", {},
                                           maintainer)
        assert len(hits) == 1 and evaluator.stats.index_rebuilds == 2

    def test_index_shards_by_key_placement(self, registry):
        for company in range(40):
            registry.register("t0", KIND_COMPANY_FUNDING, company)
        index = PredicateIndex.build(registry.active(), FakeDataset(),
                                     num_shards=4)
        assert len(index) == 40
        per_shard = [len(d) for d in index.by_company]
        assert sum(per_shard) == 40
        assert sum(1 for n in per_shard if n > 0) > 1  # actually spread

    def test_probe_counts_fan_out_per_shard(self, registry, maintainer):
        for company in range(8):
            registry.register("t0", KIND_COMPANY_FUNDING, company)
        evaluator = AlertEvaluator(registry, FakeDataset(), num_shards=4)
        maintainer.land("day-0001:derived",
                        invest=[_invest(i, i) for i in range(8)])
        evaluator.on_derived_commit("day-0001:derived", {}, maintainer)
        lookups = evaluator.index().lookups_per_shard
        assert sum(lookups) >= 8
        assert sum(1 for n in lookups if n > 0) > 1


class TestReplayIdempotence:
    def test_reevaluation_emits_identical_ids(self, registry, maintainer):
        registry.register("t0", KIND_COMPANY_FUNDING, 10)
        evaluator = AlertEvaluator(registry, FakeDataset())
        maintainer.land("day-0001:derived", invest=[_invest(1, 10)])
        first = evaluator.on_derived_commit("day-0001:derived", {},
                                            maintainer)
        again = evaluator.on_derived_commit("day-0001:derived", {},
                                            maintainer)
        assert [n.id for n in first] == [n.id for n in again]

    def test_unit_never_landed_is_empty(self, registry, maintainer):
        registry.register("t0", KIND_COMPANY_FUNDING, 10)
        evaluator = AlertEvaluator(registry, FakeDataset())
        assert evaluator.on_derived_commit("day-0099:derived", {},
                                           maintainer) == []


class TestOracle:
    def test_incremental_equals_rescan(self, registry, maintainer):
        registry.register("t0", KIND_COMPANY_FUNDING, 10)
        registry.register("t1", KIND_COMMUNITY_INVESTOR, 4)
        registry.register("t2", KIND_NEIGHBORHOOD_FOLLOW, 1)
        dataset = FakeDataset(community_of={1: 4, 5: 4},
                              follows_out={1: [("user", 2)]})
        evaluator = AlertEvaluator(registry, dataset)
        maintainer.land("day-0001:derived",
                        invest=[_invest(1, 10), _invest(5, 30)],
                        follows=[_follow(8, 2)])
        maintainer.land("day-0002:derived",
                        invest=[_invest(6, 10)],
                        follows=[_follow(9, 1), _follow(9, 4)])
        got = set()
        for unit in ("day-0001:derived", "day-0002:derived"):
            got |= {n.id for n in evaluator.on_derived_commit(
                unit, {}, maintainer)}
        assert got == rescan_oracle(registry, dataset, maintainer)
        assert got  # the fixture actually matched something

    def test_oracle_ignores_inactive_subs(self, registry, maintainer):
        sub = registry.register("t0", KIND_COMPANY_FUNDING, 10)
        maintainer.land("day-0001:derived", invest=[_invest(1, 10)])
        dataset = FakeDataset()
        assert rescan_oracle(registry, dataset, maintainer)
        registry.cancel(sub.sub_id)
        assert rescan_oracle(registry, dataset, maintainer) == set()
