"""Tests for the simulated Twitter REST API and its two constraints."""

import pytest

from repro.sources.twitter import (MAX_APPS_PER_ACCOUNT, RATE_LIMIT,
                                   RATE_WINDOW, TwitterServer)


@pytest.fixture()
def server(tiny_world):
    return TwitterServer(tiny_world)


@pytest.fixture()
def profile(tiny_world):
    return next(iter(tiny_world.twitter_profiles.values()))


class TestAppRegistration:
    def test_five_apps_per_account(self, server):
        for _ in range(MAX_APPS_PER_ACCOUNT):
            server.register_app("alice")
        with pytest.raises(PermissionError):
            server.register_app("alice")

    def test_other_account_unaffected(self, server):
        for _ in range(MAX_APPS_PER_ACCOUNT):
            server.register_app("alice")
        assert server.register_app("bob")

    def test_tokens_distinct(self, server):
        tokens = {server.register_app("alice") for _ in range(5)}
        assert len(tokens) == 5


class TestShowUser:
    def test_requires_token(self, server, profile):
        response = server.get("/1.1/users/show.json",
                              {"screen_name": profile.screen_name})
        assert response.status == 401

    def test_profile_fields(self, server, profile):
        token = server.register_app("a")
        body = server.get("/1.1/users/show.json",
                          {"screen_name": profile.screen_name,
                           "access_token": token}).body
        assert body["followers_count"] == profile.followers_count
        assert body["statuses_count"] == profile.statuses_count
        assert body["status"]["text"] == profile.latest_status

    def test_missing_screen_name_400(self, server):
        token = server.register_app("a")
        assert server.get("/1.1/users/show.json",
                          {"access_token": token}).status == 400

    def test_unknown_user_404(self, server):
        token = server.register_app("a")
        assert server.get("/1.1/users/show.json",
                          {"screen_name": "ghost",
                           "access_token": token}).status == 404


class TestRateLimit:
    def test_exactly_180_per_window(self, server, profile):
        token = server.register_app("a")
        params = {"screen_name": profile.screen_name, "access_token": token}
        statuses = [server.get("/1.1/users/show.json", params).status
                    for _ in range(RATE_LIMIT + 1)]
        assert statuses[:RATE_LIMIT] == [200] * RATE_LIMIT
        assert statuses[-1] == 429

    def test_window_reset_restores_budget(self, server, profile):
        token = server.register_app("a")
        params = {"screen_name": profile.screen_name, "access_token": token}
        for _ in range(RATE_LIMIT):
            server.get("/1.1/users/show.json", params)
        server.clock.sleep(RATE_WINDOW + 1)
        assert server.get("/1.1/users/show.json", params).ok

    def test_limits_are_per_token(self, server, profile):
        token_a = server.register_app("a")
        token_b = server.register_app("b")
        for _ in range(RATE_LIMIT):
            server.get("/1.1/users/show.json",
                       {"screen_name": profile.screen_name,
                        "access_token": token_a})
        assert server.get("/1.1/users/show.json",
                          {"screen_name": profile.screen_name,
                           "access_token": token_b}).ok

    def test_remaining_reporting(self, server, profile):
        token = server.register_app("a")
        assert server.remaining(token) == RATE_LIMIT
        server.get("/1.1/users/show.json",
                   {"screen_name": profile.screen_name,
                    "access_token": token})
        assert server.remaining(token) == RATE_LIMIT - 1
