"""Write-ahead ingest ledger: records, recovery, leases, fencing."""

import pytest

from repro.crawl.ledger import (IngestLedger, STATE_COMMITTED, STATE_INTENT,
                                STATE_PENDING)
from repro.dfs.filesystem import MiniDfs
from repro.util.clock import SimClock
from repro.util.errors import IngestError, LeaseExpired


@pytest.fixture()
def dfs():
    return MiniDfs(num_datanodes=3)


@pytest.fixture()
def clock():
    return SimClock()


def _open(dfs, clock, **kw):
    return IngestLedger(dfs, clock, root="/led", **kw).open()


class TestRecords:
    def test_intent_then_commit_lifecycle(self, dfs, clock):
        ledger = _open(dfs, clock)
        assert ledger.state("u") == STATE_PENDING
        ledger.begin("u", {"input": 1})
        assert ledger.state("u") == STATE_INTENT
        assert ledger.pending_units() == ["u"]
        ledger.commit("u", {"result": 2})
        assert ledger.state("u") == STATE_COMMITTED
        assert ledger.pending_units() == []

    def test_begin_is_idempotent_and_pins_payload(self, dfs, clock):
        ledger = _open(dfs, clock)
        first = ledger.begin("u", {"slice": [1, 2]})
        again = ledger.begin("u", {"slice": [9, 9]})  # redelivery
        assert again.seq == first.seq
        assert again.payload == {"slice": [1, 2]}

    def test_commit_is_idempotent(self, dfs, clock):
        ledger = _open(dfs, clock)
        ledger.begin("u")
        first = ledger.commit("u", {"n": 1})
        assert ledger.commit("u", {"n": 2}).seq == first.seq

    def test_commit_without_intent_rejected(self, dfs, clock):
        with pytest.raises(IngestError):
            _open(dfs, clock).commit("ghost")

    def test_begin_after_commit_rejected(self, dfs, clock):
        ledger = _open(dfs, clock)
        ledger.begin("u")
        ledger.commit("u")
        with pytest.raises(IngestError):
            ledger.begin("u")

    def test_recovery_replays_sequence_order(self, dfs, clock):
        ledger = _open(dfs, clock)
        ledger.begin("a", {"i": 1})
        ledger.begin("b", {"i": 2})
        ledger.commit("a", {"r": 1})
        reopened = _open(dfs, clock)
        assert [r.seq for r in reopened.records()] == [1, 2, 3]
        assert reopened.pending_units() == ["b"]
        assert reopened.intent_of("b").payload == {"i": 2}
        assert reopened.max_seq == 3
        # new appends continue the sequence, never reuse it
        assert reopened.begin("c").seq == 4

    def test_open_sweeps_orphan_temps(self, dfs, clock):
        dfs.create("/led/records/.rec-1.json.tmp-7", b"torn")
        ledger = _open(dfs, clock)
        assert ledger.swept_temps == 1
        assert not dfs.exists("/led/records/.rec-1.json.tmp-7")


class TestLeases:
    def test_acquire_heartbeat_release(self, dfs, clock):
        ledger = _open(dfs, clock, lease_ttl_s=100.0)
        lease = ledger.acquire_lease("u", "w1")
        assert lease.epoch == 1
        clock.advance(50)
        renewed = ledger.heartbeat(lease)
        assert renewed.expires_at == clock.now() + 100.0
        assert ledger.release(renewed)
        assert ledger.lease_of("u") is None

    def test_live_lease_blocks_other_owner(self, dfs, clock):
        ledger = _open(dfs, clock, lease_ttl_s=100.0)
        ledger.acquire_lease("u", "w1")
        assert ledger.acquire_lease("u", "w2") is None

    def test_takeover_of_expired_lease_bumps_epoch(self, dfs, clock):
        ledger = _open(dfs, clock, lease_ttl_s=10.0)
        stale = ledger.acquire_lease("u", "w1")
        clock.advance(11)
        taken = ledger.acquire_lease("u", "w2")
        assert taken.epoch == stale.epoch + 1
        # the dead owner can neither heartbeat nor commit
        with pytest.raises(LeaseExpired):
            ledger.heartbeat(stale)
        ledger.begin("u")
        with pytest.raises(LeaseExpired):
            ledger.commit("u", owner="w1", epoch=stale.epoch)
        assert ledger.fenced_commits == 1
        # the new owner commits fine
        ledger.commit("u", owner="w2", epoch=taken.epoch)

    def test_reclaim_keeps_lease_file_as_epoch_floor(self, dfs, clock):
        ledger = _open(dfs, clock, lease_ttl_s=10.0)
        ledger.begin("u")
        ledger.acquire_lease("u", "w1")
        clock.advance(11)
        assert ledger.reclaim_expired() == ["u"]
        # the file survives: a fresh acquire must see epoch 2, not 1
        assert ledger.lease_of("u") is not None
        assert ledger.acquire_lease("u", "w2").epoch == 2

    def test_gc_drops_only_committed_units_leases(self, dfs, clock):
        ledger = _open(dfs, clock, lease_ttl_s=10.0)
        ledger.begin("done")
        ledger.acquire_lease("done", "w1")
        ledger.commit("done")  # crash before release would leave the file
        ledger.begin("pending")
        ledger.acquire_lease("pending", "w1")
        assert ledger.gc_leases() == 1
        assert ledger.lease_of("done") is None
        assert ledger.lease_of("pending") is not None

    def test_fenced_commit_with_expired_own_lease(self, dfs, clock):
        ledger = _open(dfs, clock, lease_ttl_s=10.0)
        ledger.begin("u")
        lease = ledger.acquire_lease("u", "w1")
        clock.advance(11)
        with pytest.raises(LeaseExpired):
            ledger.commit("u", owner="w1", epoch=lease.epoch)

    def test_release_of_reclaimed_lease_is_noop(self, dfs, clock):
        ledger = _open(dfs, clock, lease_ttl_s=10.0)
        old = ledger.acquire_lease("u", "w1")
        clock.advance(11)
        new = ledger.acquire_lease("u", "w2")
        assert not ledger.release(old)  # not ours any more
        assert ledger.lease_of("u").epoch == new.epoch
