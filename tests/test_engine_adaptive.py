"""Differential battery: the adaptive planner must be invisible.

Every scenario runs on the naive serial context (the semantics oracle)
and then on adaptive contexts across backends × columnar × compression,
with tiny byte targets so coalescing and skew splitting actually fire.
Outputs must be *identical* — same elements, same order, same reprs —
never just equivalent. Retry and speculation configs ride along because
adaptive decisions come from observed stats, which recomputation must
not perturb.

Functions are module-level so the process backend genuinely ships them.
"""

import operator

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import write_json_dataset
from repro.engine.backends import BACKENDS
from repro.engine.context import SparkLiteContext
from repro.net.faults import FAULT_KILL_WORKER, FaultSchedule, FaultSpec

ALL_BACKENDS = sorted(BACKENDS)

#: shared read-only dataset for the scan scenarios
_DFS = MiniDfs()
_RECORDS = [{"id": i, "k": i % 7, "score": i * 3, "pad": "x" * 30}
            for i in range(120)]
write_json_dataset(_DFS, "/battery", _RECORDS, partitions=5)


# --------------------------------------------------------- battery functions
def _mod5_pair(x):
    return (x % 5, x)


def _skew_pair(x):
    # ~70% of rows pile onto one key: a genuinely skewed exchange
    return ("hot", x) if x % 10 < 7 else (f"k{x % 10}", x)


def _double(x):
    return x * 2


def _is_even(x):
    return x % 2 == 0

def _keep(record):
    return record["k"] < 4


def _project(record):
    return {"id": record["id"], "k": record["k"]}


def _sorted_group(kv):
    return (kv[0], sorted(kv[1]))


def _negate(x):
    return -x


# ----------------------------------------------------------------- scenarios
def scenario_reduce_by_key(sc):
    return (sc.parallelize(range(300), 6)
            .map(_mod5_pair).reduce_by_key(operator.add,
                                           num_partitions=8).collect())


def scenario_skewed_group_by_key(sc):
    return (sc.parallelize(range(400), 8)
            .map(_skew_pair).group_by_key(num_partitions=4)
            .map(_sorted_group).collect())


def scenario_skewed_reduce(sc):
    return (sc.parallelize(range(500), 8)
            .map(_skew_pair).reduce_by_key(operator.add,
                                           num_partitions=4).collect())


def scenario_distinct(sc):
    return (sc.parallelize([i % 17 for i in range(200)], 5)
            .distinct(num_partitions=6).collect())


def scenario_aggregate_by_key(sc):
    return (sc.parallelize(range(240), 6)
            .map(_mod5_pair)
            .aggregate_by_key(0, operator.add, operator.add,
                              num_partitions=7)
            .collect())


def scenario_count_by_key(sc):
    return (sc.parallelize(range(180), 5)
            .map(_skew_pair).count_by_key_rdd().collect())


def scenario_sort_by(sc):
    data = [(i * 37) % 19 for i in range(150)]
    return sc.parallelize(data, 6).sort_by(_negate).collect()


def scenario_repartition(sc):
    return sc.parallelize(range(90), 3).repartition(9).collect()


def scenario_join(sc):
    facts = sc.parallelize([(k % 6, k) for k in range(150)], 5)
    dims = sc.parallelize([(k, f"d{k}") for k in range(6)], 2)
    return sorted(facts.join(dims, num_partitions=4).collect())


def scenario_left_outer_join(sc):
    left = sc.parallelize([(k % 8, k) for k in range(80)], 4)
    right = sc.parallelize([(k, -k) for k in range(4)], 2)
    return sorted(left.left_outer_join(right).collect())


def scenario_scan_pushdown(sc):
    return (sc.json_dataset(_DFS, "/battery")
            .filter(_keep).map(_project).collect())


def scenario_scan_then_shuffle(sc):
    return (sc.json_dataset(_DFS, "/battery")
            .filter(_keep)
            .map(lambda r: (r["k"], 1))
            .reduce_by_key(operator.add)
            .collect())


def scenario_narrow_after_shuffle(sc):
    return (sc.parallelize(range(200), 5)
            .map(_mod5_pair).reduce_by_key(operator.add, num_partitions=8)
            .map_values(_double).filter(_pair_even).collect())


def _pair_even(kv):
    return kv[1] % 2 == 0


def scenario_map_partitions_consumer(sc):
    # whole-partition consumer: coalesce must stay off, results naive
    return (sc.parallelize(range(120), 4)
            .map(_mod5_pair).reduce_by_key(operator.add, num_partitions=6)
            .map_partitions(sorted).collect())


def scenario_cached_reuse(sc):
    base = (sc.parallelize(range(100), 4).map(_mod5_pair)
            .reduce_by_key(operator.add, num_partitions=6).cache())
    return [base.collect(), base.map_values(_double).collect()]


def scenario_union(sc):
    left = sc.parallelize(range(40), 3).map(_double)
    right = sc.parallelize(range(10), 2)
    return left.union(right).collect()


def scenario_take(sc):
    return (sc.parallelize(range(300), 6).map(_mod5_pair)
            .reduce_by_key(operator.add, num_partitions=8).take(3))


SCENARIOS = {
    name[len("scenario_"):]: fn
    for name, fn in sorted(globals().items())
    if name.startswith("scenario_")
}

#: tiny targets so every adaptive rewrite actually fires on test data
ADAPTIVE_KW = dict(engine_adaptive=True, target_partition_bytes=2048)


@pytest.fixture(scope="module")
def oracle():
    with SparkLiteContext(parallelism=3, backend="serial") as sc:
        yield sc


@pytest.fixture(scope="module")
def adaptive_contexts():
    ctxs = {name: SparkLiteContext(parallelism=3, backend=name,
                                   **ADAPTIVE_KW)
            for name in ALL_BACKENDS}
    yield ctxs
    for ctx in ctxs.values():
        ctx.stop()


# --------------------------------------------------------------------- tests
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_adaptive_matches_naive_oracle(oracle, adaptive_contexts,
                                       backend, scenario):
    fn = SCENARIOS[scenario]
    expected = fn(oracle)
    actual = fn(adaptive_contexts[backend])
    assert repr(actual) == repr(expected), \
        f"adaptive {backend} diverged on {scenario}"


@pytest.mark.parametrize("scenario",
                         ["reduce_by_key", "skewed_group_by_key",
                          "skewed_reduce", "join", "sort_by",
                          "scan_then_shuffle"])
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_adaptive_columnar_matches_oracle(oracle, backend, scenario):
    fn = SCENARIOS[scenario]
    expected = fn(oracle)
    with SparkLiteContext(parallelism=3, backend=backend,
                          engine_columnar=True, batch_rows=16,
                          **ADAPTIVE_KW) as sc:
        assert repr(fn(sc)) == repr(expected), \
            f"adaptive columnar {backend} diverged on {scenario}"


@pytest.mark.parametrize("scenario", ["reduce_by_key",
                                      "skewed_group_by_key", "join"])
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_adaptive_compressed_matches_oracle(oracle, backend, scenario):
    fn = SCENARIOS[scenario]
    expected = fn(oracle)
    with SparkLiteContext(parallelism=3, backend=backend,
                          shuffle_compress=True,
                          shuffle_compress_threshold=1,
                          **ADAPTIVE_KW) as sc:
        assert repr(fn(sc)) == repr(expected), \
            f"adaptive compressed {backend} diverged on {scenario}"


@pytest.mark.parametrize("scenario", ["skewed_group_by_key",
                                      "reduce_by_key", "join",
                                      "scan_pushdown"])
def test_adaptive_with_retries_and_speculation(oracle, scenario):
    fn = SCENARIOS[scenario]
    expected = fn(oracle)
    with SparkLiteContext(parallelism=3, backend="thread",
                          task_retries=2, speculation=True,
                          **ADAPTIVE_KW) as sc:
        assert repr(fn(sc)) == repr(expected), \
            f"adaptive retry/speculation diverged on {scenario}"


def test_adaptive_moves_fewer_bytes_on_skewed_join(oracle):
    """The headline contract: identical bytes out, fewer bytes moved."""
    fn = SCENARIOS["join"]
    with SparkLiteContext(parallelism=3, backend="serial") as naive:
        expected = fn(naive)
        naive_bytes = naive.last_job_metrics.shuffle_bytes
    with SparkLiteContext(parallelism=3, backend="serial",
                          **ADAPTIVE_KW) as sc:
        assert repr(fn(sc)) == repr(expected)
        metrics = sc.last_job_metrics
    assert metrics.broadcast_joins == 1
    assert metrics.shuffle_bytes == 0 < naive_bytes


def test_adaptive_scan_reads_fewer_bytes(oracle):
    fn = SCENARIOS["scan_pushdown"]
    expected = fn(oracle)
    with SparkLiteContext(parallelism=3, backend="serial",
                          **ADAPTIVE_KW) as sc:
        assert repr(fn(sc)) == repr(expected)
        metrics = sc.last_job_metrics
    assert metrics.scan_bytes_skipped > 0
    assert metrics.scan_fields_pruned > 0


@pytest.mark.chaos
@pytest.mark.parametrize("seed", [3, 11])
def test_adaptive_survives_worker_loss(oracle, seed):
    fn = SCENARIOS["skewed_group_by_key"]
    expected = fn(oracle)
    faults = FaultSchedule([FaultSpec(FAULT_KILL_WORKER, 0.999)],
                           seed=seed)
    with SparkLiteContext(parallelism=2, backend="thread",
                          task_retries=2, engine_faults=faults,
                          **ADAPTIVE_KW) as sc:
        assert repr(fn(sc)) == repr(expected)
        assert sc.last_job_metrics.recomputed_partitions >= 1


# ------------------------------------------------------------- property mode
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

SETTINGS = settings(max_examples=30, deadline=None)

pairs = st.lists(st.tuples(st.integers(min_value=0, max_value=9),
                           st.integers(min_value=-1000, max_value=1000)),
                 max_size=120)


@given(data=pairs, parts=st.integers(min_value=1, max_value=6),
       buckets=st.integers(min_value=1, max_value=8))
@SETTINGS
def test_property_reduce_by_key_identical(data, parts, buckets):
    def job(sc):
        return (sc.parallelize(data, parts)
                .reduce_by_key(operator.add, num_partitions=buckets)
                .collect())
    with SparkLiteContext(parallelism=2, backend="serial") as naive:
        expected = job(naive)
    with SparkLiteContext(parallelism=2, backend="serial",
                          engine_adaptive=True,
                          target_partition_bytes=64) as sc:
        assert repr(job(sc)) == repr(expected)


@given(data=pairs, buckets=st.integers(min_value=1, max_value=8))
@SETTINGS
def test_property_group_by_key_identical(data, buckets):
    def job(sc):
        return (sc.parallelize(data, 4)
                .group_by_key(num_partitions=buckets).collect())
    with SparkLiteContext(parallelism=2, backend="serial") as naive:
        expected = job(naive)
    with SparkLiteContext(parallelism=2, backend="serial",
                          engine_adaptive=True,
                          target_partition_bytes=64) as sc:
        assert repr(job(sc)) == repr(expected)


@given(data=st.lists(st.integers(min_value=-50, max_value=50),
                     max_size=100),
       buckets=st.integers(min_value=1, max_value=6))
@SETTINGS
def test_property_sort_and_distinct_identical(data, buckets):
    def job(sc):
        rdd = sc.parallelize(data, 3)
        return [rdd.sort_by(_negate, num_partitions=buckets).collect(),
                rdd.distinct(num_partitions=buckets).collect()]
    with SparkLiteContext(parallelism=2, backend="serial") as naive:
        expected = job(naive)
    with SparkLiteContext(parallelism=2, backend="serial",
                          engine_adaptive=True,
                          target_partition_bytes=64) as sc:
        assert repr(job(sc)) == repr(expected)
