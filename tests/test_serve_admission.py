"""Tests for the serve tier's front door: token bucket + bounded queue."""

import pytest

from repro.serve.admission import (ADMIT, AdmissionController, TokenBucket,
                                   priority_rank)
from repro.serve.metrics import STATUS_SHED_QUEUE, STATUS_SHED_RATE
from repro.serve.service import ServeRequest


def _req(priority="interactive", key=1, arrival=0.0):
    return ServeRequest(kind="company", key=key, priority=priority,
                        arrival_s=arrival)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)       # burst exhausted
        assert not bucket.try_take(0.05)      # half a token refilled
        assert bucket.try_take(0.1)           # one full token back

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0)
        for _ in range(3):
            assert bucket.try_take(0.0)
        assert bucket.available(1000.0) == pytest.approx(3.0)

    def test_time_moving_backwards_is_ignored(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_take(10.0)
        assert not bucket.try_take(5.0)   # no refill from the past
        assert bucket.try_take(11.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestPriorityRank:
    def test_interactive_outranks_bulk(self):
        assert priority_rank("interactive") < priority_rank("analytics")
        assert priority_rank("analytics") < priority_rank("bulk")

    def test_unknown_class_raises(self):
        with pytest.raises(ValueError):
            priority_rank("vip")


class TestAdmissionController:
    def test_rate_shed_before_queue(self):
        controller = AdmissionController(qps_limit=4.0, queue_depth=100,
                                         burst=1.0)
        assert controller.offer(_req(), 0.0).status == ADMIT
        assert controller.offer(_req(), 0.0).status == STATUS_SHED_RATE

    def test_queue_never_exceeds_depth(self):
        controller = AdmissionController(qps_limit=1000.0, queue_depth=3,
                                         burst=1000.0)
        outcomes = [controller.offer(_req(key=i), 0.0).status
                    for i in range(10)]
        assert outcomes[:3] == [ADMIT] * 3
        assert set(outcomes[3:]) == {STATUS_SHED_QUEUE}
        assert controller.queue_len == 3
        assert controller.max_queue_len == 3

    def test_higher_priority_evicts_lower(self):
        controller = AdmissionController(qps_limit=1000.0, queue_depth=2,
                                         burst=1000.0)
        controller.offer(_req("bulk", key=1), 0.0)
        controller.offer(_req("analytics", key=2), 0.0)
        decision = controller.offer(_req("interactive", key=3), 0.0)
        assert decision.status == ADMIT
        assert decision.evicted is not None
        assert decision.evicted.priority == "bulk"   # worst goes first
        assert controller.queue_len == 2

    def test_equal_priority_never_evicts(self):
        controller = AdmissionController(qps_limit=1000.0, queue_depth=1,
                                         burst=1000.0)
        controller.offer(_req("analytics", key=1), 0.0)
        decision = controller.offer(_req("analytics", key=2), 0.0)
        assert decision.status == STATUS_SHED_QUEUE
        assert decision.evicted is None

    def test_pop_is_priority_then_fifo(self):
        controller = AdmissionController(qps_limit=1000.0, queue_depth=10,
                                         burst=1000.0)
        controller.offer(_req("bulk", key=1), 0.0)
        controller.offer(_req("interactive", key=2), 0.0)
        controller.offer(_req("interactive", key=3), 0.0)
        controller.offer(_req("analytics", key=4), 0.0)
        assert [controller.pop().key for _ in range(4)] == [2, 3, 4, 1]
        assert controller.pop() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(qps_limit=10.0, queue_depth=0)
