"""Tests for the simulated CrunchBase API."""

import pytest

from repro.sources.crunchbase import CrunchBaseServer, normalize_name


@pytest.fixture(scope="module")
def server(tiny_world):
    return CrunchBaseServer(tiny_world)


@pytest.fixture(scope="module")
def key(server):
    return server.issue_key("test")


@pytest.fixture(scope="module")
def cb_company(tiny_world):
    return next(c for c in tiny_world.companies.values()
                if c.crunchbase_id is not None and c.raised_funding)


class TestNormalizeName:
    def test_lowercases(self):
        assert normalize_name("NovaLabs 3") == "novalabs 3"

    def test_collapses_whitespace(self):
        assert normalize_name("  A   B  ") == "a b"


class TestAuth:
    def test_requires_user_key(self, server):
        assert server.get("/v3/organizations", {"name": "x"}).status == 401

    def test_invalid_key(self, server):
        assert server.get("/v3/organizations",
                          {"name": "x", "user_key": "bad"}).status == 401


class TestLookup:
    def test_get_by_permalink(self, server, key, cb_company):
        body = server.get(f"/v3/organizations/{cb_company.slug}",
                          {"user_key": key}).body
        assert body["data"]["angellist_id"] == cb_company.company_id
        assert body["data"]["num_funding_rounds"] == len(cb_company.rounds)

    def test_funding_totals_sum_rounds(self, server, key, cb_company):
        body = server.get(f"/v3/organizations/{cb_company.slug}",
                          {"user_key": key}).body
        assert body["data"]["total_funding_usd"] == sum(
            r.amount_usd for r in cb_company.rounds)

    def test_unknown_permalink_404(self, server, key):
        assert server.get("/v3/organizations/not-a-company",
                          {"user_key": key}).status == 404

    def test_only_crunchbase_companies_exist(self, server, key, tiny_world):
        missing = next(c for c in tiny_world.companies.values()
                       if c.crunchbase_id is None)
        assert server.get(f"/v3/organizations/{missing.slug}",
                          {"user_key": key}).status == 404


class TestSearch:
    def test_unique_match(self, server, key, cb_company):
        body = server.get("/v3/organizations",
                          {"name": cb_company.name, "user_key": key}).body
        assert body["total"] == 1
        assert body["items"][0]["permalink"] == cb_company.slug

    def test_case_insensitive(self, server, key, cb_company):
        body = server.get("/v3/organizations",
                          {"name": cb_company.name.upper(),
                           "user_key": key}).body
        assert body["total"] == 1

    def test_no_match(self, server, key):
        body = server.get("/v3/organizations",
                          {"name": "zzz does not exist",
                           "user_key": key}).body
        assert body["total"] == 0

    def test_missing_name_400(self, server, key):
        assert server.get("/v3/organizations",
                          {"user_key": key}).status == 400


class TestPopulation:
    def test_org_count_tracks_world(self, server, tiny_world):
        expected = sum(1 for c in tiny_world.companies.values()
                       if c.crunchbase_id is not None)
        assert server.organization_count == expected

    def test_every_successful_company_present(self, server, key, tiny_world):
        raised = [c for c in tiny_world.companies.values()
                  if c.raised_funding]
        for company in raised[:25]:
            response = server.get(f"/v3/organizations/{company.slug}",
                                  {"user_key": key})
            assert response.ok
            assert response.body["data"]["num_funding_rounds"] >= 1
