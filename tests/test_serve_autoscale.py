"""Tests for the health-driven shard autoscaler."""

import pytest

from repro.serve.autoscale import (ACTION_ADD, ACTION_DRAIN, REASON_DEAD,
                                   REASON_DEGRADED, REASON_HEALTHY,
                                   AutoscaleConfig, Autoscaler)
from repro.serve.dataset import ServeDataset
from repro.serve.health import HealthMonitor, STATE_DEGRADED, STATE_HEALTHY
from repro.serve.metrics import ServeMetrics
from repro.serve.sharding import ShardServer
from repro.util.errors import ConfigError


def _fleet(replicas=2, shards=1):
    servers = [ShardServer(sid, ServeDataset(), f"/serve/shards/{sid}",
                           replicas)
               for sid in range(shards)]
    monitors = {s.shard_id: HealthMonitor(window=10, min_events=1)
                for s in servers}
    return servers, monitors


def _autoscaler(servers, monitors, **overrides):
    metrics = ServeMetrics()
    return Autoscaler(AutoscaleConfig(**overrides), servers, monitors,
                      metrics), metrics


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            AutoscaleConfig(tick_every=0)
        with pytest.raises(ConfigError):
            AutoscaleConfig(scale_up_after=0)
        with pytest.raises(ConfigError):
            AutoscaleConfig(min_replicas=3, max_replicas=2)
        with pytest.raises(ConfigError):
            AutoscaleConfig(replica_boot_s=-0.1)


class TestPanicAdd:
    def test_dead_shard_gets_replica_immediately(self):
        servers, monitors = _fleet()
        scaler, metrics = _autoscaler(servers, monitors,
                                      replica_boot_s=0.5)
        servers[0].kill_all()
        decisions = scaler.tick(now=1.0)
        assert decisions == [(1.0, 0, ACTION_ADD, 1, REASON_DEAD)]
        assert metrics.scaling_decisions == [
            (1.0, 0, ACTION_ADD, 1, REASON_DEAD)]
        # the replacement is alive but boots from DFS: ready at 1.5
        assert servers[0].replica_count == 1
        assert servers[0].alive_count(1.0) == 0
        assert servers[0].alive_count(1.5) == 1

    def test_dead_shard_at_max_reboots_in_place(self):
        servers, monitors = _fleet(replicas=4)
        scaler, _metrics = _autoscaler(servers, monitors, max_replicas=4,
                                       replica_boot_s=0.1)
        servers[0].kill_all()
        decisions = scaler.tick(now=2.0)
        assert decisions[0][2] == ACTION_ADD
        assert decisions[0][4] == REASON_DEAD
        # fleet size stays at max: a dead replica was rebooted, not added
        assert len(servers[0].replicas) == 4
        assert servers[0].alive_count(2.1) == 1


class TestScaleUp:
    def test_sustained_degraded_adds_a_replica(self):
        servers, monitors = _fleet()
        scaler, _metrics = _autoscaler(servers, monitors,
                                       scale_up_after=2, max_replicas=4)
        monitors[0].state = STATE_DEGRADED
        assert scaler.tick(now=1.0) == []          # 1 degraded tick
        decisions = scaler.tick(now=2.0)           # 2nd: sustained
        assert decisions == [(2.0, 0, ACTION_ADD, 3, REASON_DEGRADED)]
        assert servers[0].replica_count == 3

    def test_recovery_resets_the_streak(self):
        servers, monitors = _fleet()
        scaler, _metrics = _autoscaler(servers, monitors,
                                       scale_up_after=2)
        monitors[0].state = STATE_DEGRADED
        scaler.tick(now=1.0)
        monitors[0].state = STATE_HEALTHY
        scaler.tick(now=2.0)
        monitors[0].state = STATE_DEGRADED
        assert scaler.tick(now=3.0) == []          # streak restarted

    def test_never_exceeds_max_replicas(self):
        servers, monitors = _fleet(replicas=2)
        scaler, _metrics = _autoscaler(servers, monitors,
                                       scale_up_after=1, max_replicas=2)
        monitors[0].state = STATE_DEGRADED
        for t in range(1, 6):
            assert scaler.tick(now=float(t)) == []
        assert servers[0].replica_count == 2


class TestScaleDown:
    def test_sustained_healthy_drains_a_replica(self):
        servers, monitors = _fleet(replicas=3)
        scaler, _metrics = _autoscaler(servers, monitors,
                                       scale_down_after=3)
        for t in range(1, 3):
            assert scaler.tick(now=float(t)) == []
        decisions = scaler.tick(now=3.0)
        assert decisions == [(3.0, 0, ACTION_DRAIN, 2, REASON_HEALTHY)]
        assert servers[0].replica_count == 2

    def test_never_drains_below_min_replicas(self):
        servers, monitors = _fleet(replicas=1)
        scaler, _metrics = _autoscaler(servers, monitors,
                                       scale_down_after=1, min_replicas=1)
        for t in range(1, 5):
            assert scaler.tick(now=float(t)) == []
        assert servers[0].replica_count == 1


class TestDeterminism:
    def test_same_inputs_same_decision_log(self):
        logs = []
        for _ in range(2):
            servers, monitors = _fleet(replicas=2, shards=3)
            scaler, metrics = _autoscaler(servers, monitors,
                                          scale_up_after=2,
                                          scale_down_after=2)
            servers[1].kill_all()
            monitors[2].state = STATE_DEGRADED
            for t in range(1, 6):
                scaler.tick(now=float(t))
            logs.append(metrics.scaling_decisions)
        assert logs[0] == logs[1]
        assert logs[0]
