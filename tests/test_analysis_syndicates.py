"""Tests for disclosed-syndicate validation."""

import pytest

from repro.analysis.syndicates import (read_disclosed_syndicates,
                                       validate_communities,
                                       validate_over_platform)


class TestReadDisclosed:
    def test_only_disclosing_investors(self, crawled_platform):
        syndicates = read_disclosed_syndicates(crawled_platform.sc,
                                               crawled_platform.dfs)
        world = crawled_platform.world
        for sid, members in syndicates.items():
            for uid in members:
                user = world.users[uid]
                assert user.syndicate_disclosed
                assert user.primary_community_id == sid

    def test_disclosure_rate_tracks_config(self, crawled_platform):
        world = crawled_platform.world
        with_primary = [u for u in world.users.values()
                        if u.primary_community_id is not None]
        disclosed = sum(1 for u in with_primary if u.syndicate_disclosed)
        rate = disclosed / len(with_primary)
        assert abs(rate - world.config.params.p_syndicate_disclosed) < 0.12

    def test_min_size_filter(self, crawled_platform):
        syndicates = read_disclosed_syndicates(
            crawled_platform.sc, crawled_platform.dfs, min_size=5)
        assert all(len(m) >= 5 for m in syndicates.values())


class TestValidate:
    def test_perfect_detection_scores_one(self):
        syndicates = {0: {1, 2, 3}, 1: {4, 5, 6}}
        result = validate_communities(dict(syndicates), syndicates)
        assert result.cover_f1_score == 1.0
        assert result.mean_purity == 1.0

    def test_mixed_community_low_purity(self):
        syndicates = {0: {1, 2}, 1: {3, 4}}
        detected = {0: {1, 3}, 1: {2, 4}}
        result = validate_communities(detected, syndicates)
        assert result.mean_purity == pytest.approx(0.5)

    def test_undisclosed_members_ignored(self):
        syndicates = {0: {1, 2}}
        detected = {0: {1, 2, 99, 98}}  # 99/98 never disclosed
        result = validate_communities(detected, syndicates)
        assert result.mean_purity == 1.0

    def test_counts(self):
        syndicates = {0: {1, 2}, 1: {3, 4, 5}}
        result = validate_communities({0: {1, 2}}, syndicates)
        assert result.num_syndicates == 2
        assert result.disclosing_investors == 5


class TestEndToEnd:
    def test_coda_communities_align_with_syndicates(self, crawled_platform,
                                                    investor_graph):
        """Detected communities must be purer than chance w.r.t. the
        disclosed syndicates driving the herding."""
        from repro.community.coda import CoDA
        filtered = investor_graph.filter_investors(4)
        if filtered.num_investors < 20:
            pytest.skip("tiny world too small for this seed")
        coda = CoDA(num_communities=crawled_platform.world.config
                    .num_communities, max_iters=30, seed=3).fit(filtered)
        result = validate_over_platform(crawled_platform,
                                        coda.investor_communities)
        assert result.num_syndicates > 0
        if result.per_community_purity:
            # chance purity ≈ 1 / num_syndicates, far below 0.3
            assert result.mean_purity > 3.0 / result.num_syndicates
