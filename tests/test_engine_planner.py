"""Unit tests for the adaptive planner's primitives.

The differential battery (``test_engine_adaptive``) proves adaptive
plans are invisible in job results; these tests pin the decision rules
themselves — deterministic stats sampling (idempotent under
recomputation), coalesce grouping, skew detection and split-merge,
observed-size broadcast choice, lineage shape-safety gating, fused
scans and the pushdown-capable batch reads.
"""

import json
import operator
import pickle

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import (ScanCounters, read_part_batches,
                                 read_part_pushdown, write_json_dataset)
from repro.engine.columnar import batch_to_rows
from repro.engine.context import SparkLiteContext
from repro.engine.metrics import JobMetrics
from repro.engine.planner import (DEFAULT_SAMPLE_ROWS, AdaptivePlanner,
                                  StatsCollector, analyze_job,
                                  estimate_rows_bytes, merge_split_outputs,
                                  piece_nbytes)
from repro.engine.rdd import (_DistinctOp, _GroupByKeyOp, _ReduceByKeyOp,
                              _SortOp)
from repro.engine.shuffle import payload_bytes, stride_sample
from repro.net.faults import FAULT_KILL_WORKER, FaultSchedule, FaultSpec
from repro.util.errors import EngineError


def _double(x):
    return x * 2


def _mod5_pair(x):
    return (x % 5, x)


def _sorted_group(kv):
    return (kv[0], sorted(kv[1]))


def _keep_small(record):
    return record["id"] < 10


def _project_id(record):
    return {"id": record["id"]}


def _records(n=40, fields=3):
    return [{"id": i, "k": i % 4,
             **{f"pad{j}": "x" * 20 for j in range(fields - 2)}}
            for i in range(n)]


# ---------------------------------------------------------- stats sampling
class TestEstimates:
    def test_empty_rows(self):
        assert estimate_rows_bytes([]) == (0, 0)

    def test_deterministic_and_scales_with_rows(self):
        rows = [(i, "v" * 40) for i in range(100)]
        est1, n1 = estimate_rows_bytes(rows)
        est2, n2 = estimate_rows_bytes(rows)
        assert (est1, n1) == (est2, n2)
        assert n1 <= DEFAULT_SAMPLE_ROWS + 1
        exact = len(pickle.dumps(rows, pickle.HIGHEST_PROTOCOL))
        assert exact / 3 <= est1 <= exact * 3

    def test_unpicklable_rows_return_none(self):
        rows = [(x for x in range(3))]  # generators never pickle
        assert estimate_rows_bytes(rows) == (None, 0)

    def test_piece_nbytes_prefers_sealed_size(self):
        class Sealed:
            nbytes = 1234
        assert piece_nbytes(Sealed()) == 1234
        assert piece_nbytes(None) == 0
        assert piece_nbytes([1, 2, 3]) > 0

    def test_stride_sample_covers_whole_sequence(self):
        seq = list(range(100))
        sample = stride_sample(seq, 8)
        assert len(sample) == 8
        assert sample[0] == 0 and sample[-1] >= 84  # spread, not a prefix


class TestStatsCollector:
    def test_observe_counts_and_sizes(self):
        metrics = JobMetrics(backend="serial")
        collector = StatsCollector(metrics=metrics)
        stats = collector.observe("r1", [[1, 2, 3], [], [4]])
        assert stats.counts == [3, 0, 1]
        assert stats.total_rows == 4
        assert stats.total_bytes > 0
        assert metrics.stats_sampled_partitions == 3

    def test_observe_is_idempotent_per_key(self):
        # the recomputation guard: a second observation of the same
        # stage key returns the cached stats and only bumps the repeat
        # counter — sampled totals cannot double-count
        metrics = JobMetrics(backend="serial")
        collector = StatsCollector(metrics=metrics)
        first = collector.observe("r7", [[1, 2], [3]])
        sampled = (metrics.stats_sampled_partitions,
                   metrics.stats_sampled_rows)
        again = collector.observe("r7", [[999], [], [0] * 50])
        assert again is first
        assert (metrics.stats_sampled_partitions,
                metrics.stats_sampled_rows) == sampled
        assert metrics.stats_repeat_observations == 1

    def test_unpicklable_partition_poisons_total_bytes_only(self):
        collector = StatsCollector()
        stats = collector.observe("r1", [[1], [(x for x in [])]])
        assert stats.total_rows == 2
        assert stats.total_bytes is None

    def test_rejects_bad_sample_rows(self):
        with pytest.raises(EngineError):
            StatsCollector(sample_rows=0)


# ------------------------------------------------------------- reduce plans
def _pieces(sizes_by_bucket):
    """Bucket piece lists whose serialized sizes roughly follow the
    requested byte sizes (strings pickle near their length)."""
    return [[["x" * max(0, size - 20)]] if size else []
            for size in sizes_by_bucket]


class TestPlanReduce:
    def planner(self, target=200):
        return AdaptivePlanner(target_partition_bytes=target)

    def test_coalesces_adjacent_undersized_buckets(self):
        plan = self.planner(target=10_000).plan_reduce(
            _ReduceByKeyOp(operator.add), _pieces([100, 100, 100, 100]))
        assert plan is not None
        assert plan.entries == [("merge", (0, 1, 2, 3))]
        assert plan.merged_away == 3 and plan.splits == 0

    def test_respects_target_boundary(self):
        plan = self.planner(target=250).plan_reduce(
            _ReduceByKeyOp(operator.add), _pieces([100, 100, 100, 100]))
        groups = [e[1] for e in plan.entries]
        assert all(len(g) == 2 for g in groups)

    def test_none_when_nothing_to_do(self):
        big = self.planner(target=10).plan_reduce(
            _ReduceByKeyOp(operator.add), _pieces([100, 100]))
        assert big is None
        assert self.planner().plan_reduce(
            _ReduceByKeyOp(operator.add), []) is None

    def test_coalesce_disabled_without_shape_safety(self):
        plan = self.planner(target=10_000).plan_reduce(
            _ReduceByKeyOp(operator.add), _pieces([100, 100]),
            allow_coalesce=False)
        assert plan is None

    def test_skew_split_spans_piece_boundaries(self):
        planner = AdaptivePlanner(target_partition_bytes=150,
                                  skew_factor=2.0)
        hot = [["h" * 100] for _ in range(6)]  # six ~100-byte pieces
        pieces = [hot, [["x" * 80]], [["x" * 80]]]
        plan = planner.plan_reduce(_ReduceByKeyOp(operator.add), pieces)
        assert plan is not None and plan.splits == 1
        kind, bucket, chunks = plan.entries[0]
        assert (kind, bucket) == ("split", 0)
        assert len(chunks) >= 2
        assert chunks[0][0] == 0 and chunks[-1][1] == 6
        # chunks tile the piece list contiguously
        for (_, hi), (lo, _) in zip(chunks, chunks[1:]):
            assert hi == lo

    def test_no_split_without_partial_merge(self):
        # _SortOp output is already range-balanced and cannot merge
        # partials; a huge bucket must not be split
        planner = AdaptivePlanner(target_partition_bytes=50,
                                  skew_factor=2.0)
        pieces = [[["h" * 100] for _ in range(6)], [["x" * 30]],
                  [["x" * 30]]]
        plan = planner.plan_reduce(_SortOp(lambda x: x, True), pieces)
        assert plan is None or plan.splits == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(EngineError):
            AdaptivePlanner(target_partition_bytes=0)
        with pytest.raises(EngineError):
            AdaptivePlanner(broadcast_capacity=-1)
        with pytest.raises(EngineError):
            AdaptivePlanner(skew_factor=1.0)


class TestMergeSplitOutputs:
    def test_single_output_passthrough(self):
        assert merge_split_outputs(_ReduceByKeyOp(operator.add),
                                   [[("a", 1)]]) == [("a", 1)]

    def test_post_mode_refolds(self):
        post = _ReduceByKeyOp(operator.add)
        merged = merge_split_outputs(
            post, [[("a", 3), ("b", 1)], [("a", 2)], [("b", 4), ("c", 9)]])
        assert merged == post([("a", 3), ("b", 1), ("a", 2),
                               ("b", 4), ("c", 9)])

    def test_group_mode_concatenates_value_lists(self):
        post = _GroupByKeyOp()
        rows = [("a", 1), ("b", 2), ("a", 3), ("a", 4), ("b", 5)]
        merged = merge_split_outputs(
            post, [post(rows[:2]), post(rows[2:])])
        assert repr(merged) == repr(post(rows))

    def test_distinct_post_mode(self):
        post = _DistinctOp()
        merged = merge_split_outputs(post, [post([1, 2, 2]), post([2, 3])])
        assert merged == post([1, 2, 2, 2, 3])

    def test_unmergeable_post_raises(self):
        with pytest.raises(EngineError):
            merge_split_outputs(_SortOp(lambda x: x, True), [[1], [2]])


# -------------------------------------------------------------- broadcasts
class TestChooseBroadcast:
    def stats(self, rows, nbytes):
        collector = StatsCollector()
        observed = collector.observe("k", [["x"] * rows])
        observed.counts = [rows]
        observed.est_bytes = [nbytes]
        return observed

    def test_picks_smaller_eligible_side(self):
        planner = AdaptivePlanner(broadcast_capacity=1000)
        assert planner.choose_broadcast(self.stats(10, 500),
                                        self.stats(90, 900),
                                        "inner") == "left"
        assert planner.choose_broadcast(self.stats(90, 900),
                                        self.stats(10, 500),
                                        "inner") == "right"

    def test_left_ineligible_for_outer_joins(self):
        planner = AdaptivePlanner(broadcast_capacity=1000)
        assert planner.choose_broadcast(self.stats(1, 10),
                                        self.stats(9, 900),
                                        "left") == "right"
        assert planner.choose_broadcast(self.stats(1, 10),
                                        self.stats(9, 9999),
                                        "left") is None

    def test_none_when_both_over_capacity(self):
        planner = AdaptivePlanner(broadcast_capacity=100)
        assert planner.choose_broadcast(self.stats(9, 900),
                                        self.stats(9, 901),
                                        "inner") is None

    def test_unpicklable_side_never_broadcasts(self):
        planner = AdaptivePlanner(broadcast_capacity=10_000)
        bad = self.stats(5, 10)
        bad.est_bytes = [None]
        assert planner.choose_broadcast(self.stats(5, 10), bad,
                                        "inner") == "left"
        assert planner.choose_broadcast(bad, bad, "inner") is None


class TestBroadcastBytesMetric:
    """``broadcast_bytes`` must equal the actual serialized size of the
    broadcast side, on both the static-threshold and adaptive paths."""

    def _facts_dims(self, sc):
        facts = sc.parallelize([(i % 10, i) for i in range(400)], 4)
        dims = sc.parallelize([(k, f"d{k}") for k in range(10)], 2)
        return facts, dims

    def test_static_threshold_path_pins_payload(self):
        with SparkLiteContext(parallelism=2, backend="serial",
                              broadcast_join_threshold=1 << 20) as sc:
            facts, dims = self._facts_dims(sc)
            expected = payload_bytes(sc._run_job_partitions(dims))
            facts.join(dims).collect()
            metrics = sc.last_job_metrics
        assert metrics.broadcast_joins == 1
        assert metrics.broadcast_bytes == expected
        stage = [s for s in metrics.stages if s.broadcast][0]
        assert stage.broadcast_bytes == expected

    def test_adaptive_path_pins_payload(self):
        with SparkLiteContext(parallelism=2, backend="serial",
                              engine_adaptive=True) as sc:
            facts, dims = self._facts_dims(sc)
            expected = payload_bytes(sc._run_job_partitions(dims))
            facts.join(dims).collect()
            metrics = sc.last_job_metrics
        assert metrics.broadcast_joins == 1
        assert metrics.broadcast_bytes == expected
        assert metrics.shuffle_bytes == 0  # nothing exchanged

    def test_adaptive_declines_oversized_sides(self):
        with SparkLiteContext(parallelism=2, backend="serial",
                              engine_adaptive=True) as sc:
            planner = sc.adaptive_planner
            planner.broadcast_capacity = 1  # nothing fits
            facts, dims = self._facts_dims(sc)
            out = sorted(facts.join(dims).collect())
            metrics = sc.last_job_metrics
        assert metrics.broadcast_joins == 0
        assert metrics.shuffles > 0
        assert len(out) == 400


# ------------------------------------------------------------- job analysis
def _never_cached(_node):
    return False


class TestAnalyzeJob:
    def test_shuffle_output_into_narrow_chain_is_shape_safe(self):
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            reduced = (sc.parallelize(range(40), 4).map(_mod5_pair)
                       .reduce_by_key(operator.add))
            root = reduced.map(_double)
            plan = analyze_job(root, _never_cached)
            assert reduced.rdd_id in plan.shape_safe
            assert root.rdd_id in plan.shape_safe

    def test_whole_partition_consumer_pins_shape(self):
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            reduced = (sc.parallelize(range(40), 4).map(_mod5_pair)
                       .reduce_by_key(operator.add))
            root = reduced.map_partitions(sorted)
            plan = analyze_job(root, _never_cached)
            assert reduced.rdd_id not in plan.shape_safe

    def test_persisted_node_pins_shape(self):
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            reduced = (sc.parallelize(range(40), 4).map(_mod5_pair)
                       .reduce_by_key(operator.add).cache())
            plan = analyze_job(reduced.map(_double), _never_cached)
            assert reduced.rdd_id not in plan.shape_safe

    def test_downstream_shuffle_stops_propagation(self):
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            reduced = (sc.parallelize(range(40), 4).map(_mod5_pair)
                       .reduce_by_key(operator.add))
            # the re-shuffle consumer reshapes independently, so the
            # first reduce stays shape-safe even though the second
            # shuffle's own consumer is whole-partition
            root = reduced.group_by_key().map_partitions(list)
            plan = analyze_job(root, _never_cached)
            assert reduced.rdd_id in plan.shape_safe

    def test_scan_filter_map_chain_fuses(self):
        dfs = MiniDfs()
        write_json_dataset(dfs, "/d", _records(), partitions=3)
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            scan = sc.json_dataset(dfs, "/d")
            terminal = scan.filter(_keep_small).map(_project_id)
            plan = analyze_job(terminal.map_partitions(list), _never_cached)
            assert terminal.rdd_id in plan.fusions
            fusion = plan.fusions[terminal.rdd_id]
            assert [k for k, _ in fusion.ops] == ["filter", "map"]
            assert scan.rdd_id in plan.interior

    def test_multi_consumer_scan_does_not_fuse(self):
        dfs = MiniDfs()
        write_json_dataset(dfs, "/d", _records(), partitions=3)
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            scan = sc.json_dataset(dfs, "/d")
            left = scan.filter(_keep_small)
            right = scan.map(_project_id)
            plan = analyze_job(left.union(right), _never_cached)
            assert plan.fusions == {}

    def test_persisted_scan_does_not_fuse(self):
        dfs = MiniDfs()
        write_json_dataset(dfs, "/d", _records(), partitions=3)
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            scan = sc.json_dataset(dfs, "/d").cache()
            plan = analyze_job(scan.filter(_keep_small), _never_cached)
            assert plan.fusions == {}


# ------------------------------------------------------------- fused scans
class TestScanPushdown:
    def test_read_part_pushdown_matches_unfused_chain(self):
        dfs = MiniDfs()
        records = _records(30)
        write_json_dataset(dfs, "/d", records, partitions=1)
        path = dfs.glob_parts("/d")[0]
        ops = (("filter", _keep_small), ("map", _project_id))
        rows, skipped, pruned = read_part_pushdown(dfs, path, ops)
        expected = [_project_id(r) for r in records if _keep_small(r)]
        assert repr(rows) == repr(expected)
        assert skipped > 0 and pruned > 0
        # skipped bytes equal the dropped lines exactly (newline incl.)
        text = dfs.read_text(path)
        dropped = [line for line in text.splitlines()
                   if line and not _keep_small(json.loads(line))]
        assert skipped == sum(len(line) + 1 for line in dropped)

    def test_engine_fuses_scan_and_counts(self):
        dfs = MiniDfs()
        records = _records(40)
        write_json_dataset(dfs, "/d", records, partitions=4)
        expected = [_project_id(r) for r in records if _keep_small(r)]
        with SparkLiteContext(parallelism=2, backend="serial",
                              engine_adaptive=True) as sc:
            out = (sc.json_dataset(dfs, "/d")
                   .filter(_keep_small).map(_project_id).collect())
            metrics = sc.last_job_metrics
        assert repr(out) == repr(expected)
        assert metrics.scan_bytes_skipped > 0
        assert metrics.scan_fields_pruned > 0
        assert metrics.pushed_filters == 1
        assert metrics.pushed_projections == 1

    def test_json_batches_predicate_and_column_projection(self):
        dfs = MiniDfs()
        records = _records(30)
        write_json_dataset(dfs, "/d", records, partitions=2)
        path = dfs.glob_parts("/d")[0]
        counters = ScanCounters()
        batches = read_part_batches(dfs, path, 8, predicate=_keep_small,
                                    projection=("id", "k"),
                                    counters=counters)
        rows = [r for b in batches for r in batch_to_rows(b)]
        # first part file holds records[:15] (30 records over 2 parts)
        kept = [{"id": r["id"], "k": r["k"]}
                for r in records[:15] if _keep_small(r)]
        assert repr(rows) == repr(kept)
        assert counters.bytes_skipped > 0
        assert counters.fields_pruned == len(kept) * 1  # one pad column

    def test_json_batches_callable_projection(self):
        dfs = MiniDfs()
        write_json_dataset(dfs, "/d", _records(20), partitions=1)
        path = dfs.glob_parts("/d")[0]
        counters = ScanCounters()
        batches = read_part_batches(dfs, path, 8,
                                    projection=_project_id,
                                    counters=counters)
        rows = [r for b in batches for r in batch_to_rows(b)]
        assert all(set(r) == {"id"} for r in rows)
        assert counters.fields_pruned == 20 * 2

    def test_context_json_batches_records_pushdown_metrics(self):
        dfs = MiniDfs()
        records = _records(40)
        write_json_dataset(dfs, "/d", records, partitions=4)
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            rdd = sc.json_batches(dfs, "/d", batch_rows=8,
                                  predicate=_keep_small,
                                  projection=("id",))
            rows = rdd.flat_map(batch_to_rows).collect()
            metrics = sc.last_job_metrics
        assert rows == [{"id": i} for i in range(10)]
        assert metrics.scan_bytes_skipped > 0
        assert metrics.scan_fields_pruned > 0
        assert metrics.pushed_filters == 4   # one per part file
        assert metrics.pushed_projections == 4

    def test_pushdown_scan_memo_key_distinguishes_args(self):
        dfs = MiniDfs()
        write_json_dataset(dfs, "/d", _records(20), partitions=2)
        with SparkLiteContext(parallelism=2, backend="serial") as sc:
            plain = sc.json_batches(dfs, "/d")
            pushed = sc.json_batches(dfs, "/d", predicate=_keep_small)
            assert plain is not pushed
            assert sc.json_batches(dfs, "/d") is plain


# ----------------------------------------------------- engine-level effects
class TestAdaptiveEngineEffects:
    def test_coalesce_merges_and_pads_partitions(self):
        with SparkLiteContext(parallelism=2, backend="serial",
                              engine_adaptive=True) as sc:
            rdd = (sc.parallelize(range(100), 4).map(_mod5_pair)
                   .reduce_by_key(operator.add, num_partitions=8))
            parts = sc._run_job_partitions(rdd)
            metrics = sc.last_job_metrics
        assert len(parts) == 8  # declared count survives via padding
        assert metrics.adaptive_coalesces == 1
        assert metrics.adaptive_partitions_merged > 0
        stage = [s for s in metrics.stages if s.coalesced_from][0]
        assert stage.coalesced_from == 8
        assert stage.coalesced_to < 8

    def test_whole_partition_consumer_blocks_coalesce(self):
        def job(sc):
            return (sc.parallelize(range(100), 4).map(_mod5_pair)
                    .reduce_by_key(operator.add, num_partitions=8)
                    .map_partitions(sorted).collect())
        with SparkLiteContext(parallelism=2, backend="serial") as naive:
            expected = job(naive)
        with SparkLiteContext(parallelism=2, backend="serial",
                              engine_adaptive=True) as sc:
            assert repr(job(sc)) == repr(expected)
            assert sc.last_job_metrics.adaptive_coalesces == 0

    def test_cached_shuffle_blocks_coalesce(self):
        with SparkLiteContext(parallelism=2, backend="serial",
                              engine_adaptive=True) as sc:
            reduced = (sc.parallelize(range(100), 4).map(_mod5_pair)
                       .reduce_by_key(operator.add, num_partitions=8)
                       .cache())
            first = reduced.collect()
            assert sc.last_job_metrics.adaptive_coalesces == 0
            # the cached shape is the naive one, and reuse sees it
            parts = sc._run_job_partitions(reduced)
            assert len(parts) == 8
            assert sorted(x for p in parts for x in p) == sorted(first)

    def test_skew_split_metrics_and_identity(self):
        # group_by_key: the map-side combiner cannot collapse the hot
        # key's values, so the exchange really is skewed
        skewed = ([("hot", i) for i in range(3000)]
                  + [(f"k{i}", i) for i in range(40)])

        def job(sc):
            return sorted(sc.parallelize(skewed, 8)
                          .group_by_key(num_partitions=4)
                          .map(_sorted_group).collect())
        with SparkLiteContext(parallelism=2, backend="serial") as naive:
            expected = job(naive)
        with SparkLiteContext(parallelism=2, backend="serial",
                              engine_adaptive=True,
                              target_partition_bytes=1024) as sc:
            assert repr(job(sc)) == repr(expected)
            metrics = sc.last_job_metrics
        assert metrics.skew_splits >= 1
        assert metrics.skew_split_tasks > metrics.skew_splits

    def test_stats_sampling_is_deterministic_across_runs(self):
        def run():
            with SparkLiteContext(parallelism=2, backend="serial",
                                  engine_adaptive=True) as sc:
                (sc.parallelize(range(200), 4).map(_mod5_pair)
                 .reduce_by_key(operator.add).collect())
                d = sc.last_job_metrics.as_dict()
                return (d["stats_sampled_partitions"],
                        d["stats_sampled_rows"])
        assert run() == run()
        assert run()[0] > 0


# ------------------------------------------------------------------- chaos
@pytest.mark.chaos
class TestAdaptiveUnderChaos:
    def test_kill_worker_mid_stage_cannot_double_count_samples(self):
        """Supervisor recovery recomputes partitions; the idempotent
        stage-boundary observation keeps sampling counters identical to
        a fault-free run, and results stay byte-identical."""
        def job(sc):
            return (sc.parallelize(range(300), 6).map(_mod5_pair)
                    .reduce_by_key(operator.add).collect())
        with SparkLiteContext(parallelism=2, backend="serial",
                              engine_adaptive=True) as calm:
            expected = job(calm)
            baseline = calm.last_job_metrics.as_dict()
        faults = FaultSchedule([FaultSpec(FAULT_KILL_WORKER, 0.999)],
                               seed=11)
        with SparkLiteContext(parallelism=2, backend="thread",
                              engine_adaptive=True, task_retries=2,
                              engine_faults=faults) as chaotic:
            out = job(chaotic)
            metrics = chaotic.last_job_metrics.as_dict()
        assert repr(out) == repr(expected)
        assert metrics["recomputed_partitions"] >= 1
        for key in ("stats_sampled_partitions", "stats_sampled_rows",
                    "adaptive_coalesces", "adaptive_partitions_merged"):
            assert metrics[key] == baseline[key], key
