"""Tests for the Spark-style graph construction from crawled data."""

import pytest

from repro.graph.build import build_investor_graph, merge_investment_edges


class TestMerge:
    def test_edges_match_ground_truth(self, crawled_platform):
        edges = merge_investment_edges(crawled_platform.sc,
                                       crawled_platform.dfs)
        truth = {(i.investor_id, i.company_id)
                 for i in crawled_platform.world.investments}
        # CrunchBase rounds cap investor lists at 12, so merged edges are
        # a subset of truth but must cover all AngelList-visible edges.
        assert set(edges) == truth

    def test_no_duplicate_edges(self, crawled_platform):
        edges = merge_investment_edges(crawled_platform.sc,
                                       crawled_platform.dfs)
        assert len(edges) == len(set(edges))

    def test_crunchbase_contributes_overlapping_evidence(
            self, crawled_platform):
        """Rounds re-assert AngelList edges; the union must dedupe them."""
        sc, dfs = crawled_platform.sc, crawled_platform.dfs
        cb_edges = (sc.json_dataset(dfs, "/crawl/crunchbase/organizations")
                    .flat_map(lambda org: [
                        (int(i), int(org["angellist_id"]))
                        for r in org.get("funding_rounds", [])
                        for i in r.get("investor_ids", [])])
                    .collect())
        merged = merge_investment_edges(sc, dfs)
        assert set(cb_edges) <= set(merged)


class TestBuild:
    def test_graph_matches_world_summary(self, crawled_platform,
                                         investor_graph):
        summary = crawled_platform.world.summary()
        assert investor_graph.num_edges == summary["investment_edges"]
        assert investor_graph.num_investors == summary["active_investors"]
        assert investor_graph.num_companies == summary["invested_companies"]

    def test_investors_without_investments_omitted(self, crawled_platform,
                                                   investor_graph):
        investing = {u.user_id for u in crawled_platform.world.users.values()
                     if u.investments}
        assert set(investor_graph.investors) == investing
