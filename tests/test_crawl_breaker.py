"""Tests for the circuit breaker and the dead-letter queue."""

import pytest

from repro.crawl.breaker import (CircuitBreaker, STATE_CLOSED,
                                 STATE_HALF_OPEN, STATE_OPEN, breaker_for)
from repro.crawl.client import ApiClient
from repro.crawl.deadletter import DeadLetter, DeadLetterQueue
from repro.dfs.filesystem import MiniDfs
from repro.net.http import Response, SimServer
from repro.util.clock import SimClock
from repro.util.errors import DeadLetterError


@pytest.fixture()
def clock():
    return SimClock()


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        assert breaker.acquire() == 0.0

    def test_trips_after_consecutive_failures(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=3, cooldown_s=10.0)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 1

    def test_success_resets_the_streak(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_open_acquire_returns_cooldown_and_half_opens(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_s=30.0)
        breaker.record_failure()
        wait = breaker.acquire()
        assert wait == pytest.approx(30.0)
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.probes == 1

    def test_probe_success_closes_and_resets_cooldown(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_s=30.0)
        breaker.record_failure()
        breaker.acquire()
        breaker.record_failure()          # failed probe -> escalate
        assert breaker.current_cooldown_s == pytest.approx(60.0)
        breaker.acquire()
        breaker.record_success()          # probe succeeds
        assert breaker.state == STATE_CLOSED
        assert breaker.current_cooldown_s == pytest.approx(30.0)

    def test_escalation_is_capped(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_s=100.0,
                                 max_cooldown_s=300.0)
        breaker.record_failure()
        for _ in range(5):
            breaker.acquire()
            breaker.record_failure()
        assert breaker.current_cooldown_s == pytest.approx(300.0)

    def test_elapsed_cooldown_costs_nothing(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        clock.sleep(60.0)
        assert breaker.acquire() == 0.0

    def test_half_open_admits_exactly_one_probe(self, clock):
        """Regression: concurrent acquire() callers during half-open
        must keep waiting while the probe is in flight, not stampede
        the recovering source with simultaneous probes."""
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_s=10.0)
        breaker.record_failure()
        clock.sleep(10.0)                      # cooldown elapsed
        assert breaker.acquire() == 0.0        # first caller = the probe
        assert breaker.probes == 1
        # every other worker arriving mid-probe is told to wait again
        for _ in range(5):
            assert breaker.acquire() > 0.0
        assert breaker.probes == 1             # still just the one probe
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.acquire() == 0.0        # traffic flows again

    def test_waiters_before_cooldown_end_share_the_remaining_wait(
            self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_s=20.0)
        breaker.record_failure()
        clock.sleep(5.0)
        first = breaker.acquire()              # becomes the probe
        assert first == pytest.approx(15.0)
        second = breaker.acquire()             # waits, does not probe
        assert second == pytest.approx(15.0)
        assert breaker.probes == 1

    def test_failed_probe_releases_the_probe_slot(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_s=10.0)
        breaker.record_failure()
        clock.sleep(10.0)
        assert breaker.acquire() == 0.0
        breaker.record_failure()               # probe failed -> re-open
        assert breaker.state == STATE_OPEN
        clock.sleep(breaker.current_cooldown_s)
        assert breaker.acquire() == 0.0        # next probe is admitted
        assert breaker.probes == 2

    def test_try_acquire_is_non_blocking(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_s=10.0)
        assert breaker.try_acquire()           # closed: go
        breaker.record_failure()
        assert not breaker.try_acquire()       # open, cooling down
        clock.sleep(10.0)
        assert breaker.try_acquire()           # becomes the probe
        assert not breaker.try_acquire()       # stampede blocked here too
        breaker.record_success()
        assert breaker.try_acquire()

    def test_breaker_for_disabled(self, clock):
        assert breaker_for(clock, "x", failure_threshold=0) is None
        assert breaker_for(clock, "x", failure_threshold=2) is not None

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(clock, failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, cooldown_s=0.0)


class _DownServer(SimServer):
    """Fails every request with a 503 (no Retry-After)."""

    name = "down"

    def __init__(self, clock):
        super().__init__(clock=clock)
        self.route("GET", "/x", lambda r: Response.error(500, "boom"))

    def _dispatch(self, request):
        return Response.error(503, "down hard")


class TestBreakerInClient:
    def test_open_breaker_delays_requests(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=2, cooldown_s=30.0)
        server = _DownServer(clock)
        client = ApiClient(server, clock, token="t", max_retries=4,
                           backoff_base=1.0, breaker=breaker)
        with pytest.raises(Exception):
            client.get("/x")
        assert breaker.trips >= 1
        assert client.stats.breaker_waits >= 1


class TestDeadLetterQueue:
    def test_append_and_pending_roundtrip(self):
        dfs = MiniDfs()
        queue = DeadLetterQueue(dfs)
        letter = DeadLetter("GET", "/pg/acme", {"q": 1},
                            tag={"angellist_id": 7}, error="boom", attempts=6)
        path = queue.append(letter)
        assert queue.pending() == [path]
        loaded = queue.load(path)
        assert loaded == letter

    def test_sequence_survives_reopen(self):
        dfs = MiniDfs()
        queue = DeadLetterQueue(dfs)
        queue.append(DeadLetter("GET", "/a"))
        queue.append(DeadLetter("GET", "/b"))
        reopened = DeadLetterQueue(dfs)
        path = reopened.append(DeadLetter("GET", "/c"))
        assert path.endswith("letter-000002.json")
        assert len(reopened) == 3

    def test_replay_drains_on_success(self, clock):
        class _Flaky(SimServer):
            name = "flaky"

            def __init__(self):
                super().__init__(clock=clock)
                self.route("GET", "/item/:id",
                           lambda r: Response.json(
                               {"id": r.path_params["id"]}))

        dfs = MiniDfs()
        queue = DeadLetterQueue(dfs)
        queue.append(DeadLetter("GET", "/item/1", tag={"k": 1}))
        queue.append(DeadLetter("GET", "/item/2", tag={"k": 2}))
        client = ApiClient(_Flaky(), clock, token="t")
        recovered = []
        report = queue.replay(client,
                              lambda letter, body: recovered.append(
                                  (letter.tag["k"], body["id"])))
        assert report.replayed == 2 and report.drained
        assert recovered == [(1, "1"), (2, "2")]
        assert len(queue) == 0

    def test_replay_requeues_failures(self, clock):
        dfs = MiniDfs()
        queue = DeadLetterQueue(dfs)
        queue.append(DeadLetter("GET", "/x"))
        client = ApiClient(_DownServer(clock), clock, token="t",
                           max_retries=0, dead_letters=queue)
        report = queue.replay(client)
        assert report.requeued == 1 and not report.drained
        # the replay path must NOT re-dead-letter into the queue
        assert len(queue) == 1

    def test_client_parks_letter_on_budget_exhaustion(self, clock):
        dfs = MiniDfs()
        queue = DeadLetterQueue(dfs)
        client = ApiClient(_DownServer(clock), clock, token="t",
                           max_retries=1, dead_letters=queue)
        with pytest.raises(DeadLetterError) as excinfo:
            client.get("/x", tag={"angellist_id": 3})
        assert len(queue) == 1
        letter = queue.load(excinfo.value.letter_path)
        assert letter.tag == {"angellist_id": 3}
        assert letter.method == "GET" and letter.path == "/x"
        assert client.stats.dead_lettered == 1
