"""Tests for layouts, SVG rendering and ASCII charts."""

import math

import numpy as np
import pytest

from repro.viz.ascii import ascii_cdf, ascii_histogram, ascii_series, ascii_table
from repro.viz.layout import bipartite_layout, fruchterman_reingold
from repro.viz.svg import SvgCanvas, render_community_svg


class TestFruchtermanReingold:
    def test_positions_for_all_nodes(self):
        nodes = list(range(8))
        edges = [(0, 1), (1, 2), (5, 6)]
        pos = fruchterman_reingold(nodes, edges, iterations=30, seed=1)
        assert set(pos) == set(nodes)

    def test_positions_in_unit_box(self):
        pos = fruchterman_reingold(list(range(10)), [(0, 1)], seed=1)
        for x, y in pos.values():
            assert -1e-9 <= x <= 1.0 + 1e-9
            assert -1e-9 <= y <= 1.0 + 1e-9

    def test_empty_graph(self):
        assert fruchterman_reingold([], []) == {}

    def test_single_node(self):
        pos = fruchterman_reingold(["a"], [])
        assert "a" in pos

    def test_connected_nodes_closer_than_disconnected(self):
        # two tight pairs far apart
        nodes = [0, 1, 2, 3]
        edges = [(0, 1), (2, 3)]
        pos = fruchterman_reingold(nodes, edges, iterations=200, seed=3)

        def dist(a, b):
            return math.dist(pos[a], pos[b])
        assert dist(0, 1) < dist(0, 2)
        assert dist(2, 3) < dist(1, 3)

    def test_deterministic(self):
        nodes, edges = list(range(5)), [(0, 1), (1, 2)]
        a = fruchterman_reingold(nodes, edges, seed=7)
        b = fruchterman_reingold(nodes, edges, seed=7)
        assert a == b


class TestBipartiteLayout:
    def test_columns(self):
        pos = bipartite_layout(["i1", "i2"], ["c1"])
        assert pos["i1"][0] == 0.0
        assert pos["c1"][0] == 1.0

    def test_vertical_spread(self):
        pos = bipartite_layout(["a", "b", "c"], [])
        ys = sorted(p[1] for p in pos.values())
        assert ys == [0.0, 0.5, 1.0]


class TestSvg:
    def test_canvas_document_structure(self):
        canvas = SvgCanvas(100, 50)
        canvas.circle(10, 10, 3, "#ff0000", title="node")
        canvas.line(0, 0, 100, 50)
        canvas.text(5, 5, "hello")
        svg = canvas.to_svg()
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "<circle" in svg and "<line" in svg and "hello" in svg

    def test_canvas_save(self, tmp_path):
        canvas = SvgCanvas()
        path = tmp_path / "out.svg"
        canvas.save(str(path))
        assert path.read_text().startswith("<svg")

    def test_render_community(self):
        svg = render_community_svg([1, 2], [(1, 10), (2, 10), (2, 11)],
                                   title="strong")
        assert svg.count("<circle") == 4  # 2 investors + 2 companies
        assert svg.count("<line") == 3
        assert "strong" in svg

    def test_colors_by_role(self):
        svg = render_community_svg([1], [(1, 10)])
        assert "#2b6cb0" in svg  # investor blue
        assert "#c53030" in svg  # company red

    def test_empty_community(self):
        svg = render_community_svg([], [])
        assert svg.startswith("<svg")


class TestAscii:
    def test_series_renders(self):
        out = ascii_series([0, 1, 2], [0, 1, 4])
        assert "*" in out
        assert "└" in out

    def test_empty_series(self):
        assert "empty" in ascii_series([], [])

    def test_cdf_monotone_output(self):
        out = ascii_cdf([1, 2, 2, 3, 10])
        assert "F(x)" in out

    def test_histogram_counts(self):
        out = ascii_histogram([1] * 10 + [5] * 2, bins=4)
        assert "10" in out
        assert "n=12" in out

    def test_histogram_empty(self):
        assert "empty" in ascii_histogram([])

    def test_table_alignment(self):
        out = ascii_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[1].startswith("-")

    def test_table_handles_mixed_types(self):
        out = ascii_table(["x"], [[None], [1.5], ["txt"]])
        assert "None" in out and "1.5" in out and "txt" in out
