"""Tests for the sharded scatter-gather serve tier."""

import json

import pytest

from repro.net.faults import (FAULT_KILL_SHARD, FAULT_PARTITION_SHARD,
                              FAULT_SLOW_REPLICA, FaultSchedule)
from repro.serve.autoscale import REASON_DEAD, AutoscaleConfig
from repro.serve.loadgen import LoadProfile, generate_schedule, replay
from repro.serve.metrics import (SHARD_DEAD, SHARD_OK, SHARD_PARTITIONED,
                                 STATUS_FRESH, STATUS_PARTIAL)
from repro.serve.service import ServeConfig, ServeRequest
from repro.serve.sharding import (ShardConfig, kill_target,
                                  partition_target, shard_index_from_json,
                                  shard_index_json, shard_of,
                                  slow_replica_target, split_dataset)

NUM_SHARDS = 4


@pytest.fixture(scope="module")
def dataset(crawled_platform):
    return crawled_platform.serve_dataset()


def _service(platform, faults=None, autoscale=None, **overrides):
    overrides.setdefault("qps_limit", 10_000.0)
    overrides.setdefault("queue_depth", 64)
    return platform.sharded_query_service(
        config=ServeConfig(**overrides),
        shard_config=ShardConfig(num_shards=NUM_SHARDS, replicas=2),
        autoscale=autoscale, faults=faults)


def _community_keys(dataset):
    return [k for k in dataset.keys_for("community")
            if dataset.community_of.get(k) is not None]


class TestShardOf:
    def test_stable_and_in_range(self):
        for key in (0, 1, 17, 123456, 99999999):
            first = shard_of(key, NUM_SHARDS)
            assert first == shard_of(key, NUM_SHARDS)
            assert 0 <= first < NUM_SHARDS
        assert shard_of(42, 1) == 0

    def test_spreads_keys(self):
        owners = {shard_of(k, NUM_SHARDS) for k in range(200)}
        assert owners == set(range(NUM_SHARDS))


class TestSplitDataset:
    def test_partition_is_exact_and_disjoint(self, dataset):
        shards = split_dataset(dataset, NUM_SHARDS)
        for attr in ("company_parts", "user_parts", "community_of",
                     "engagement", "portfolio", "follows_out"):
            whole = set(getattr(dataset, attr))
            pieces = [set(getattr(s, attr)) for s in shards]
            assert set.union(set(), *pieces) == whole
            assert sum(len(p) for p in pieces) == len(whole)
        # every key landed on the shard its hash says it owns
        for sid, shard in enumerate(shards):
            assert all(shard_of(c, NUM_SHARDS) == sid
                       for c in shard.company_parts)
            assert all(shard_of(u, NUM_SHARDS) == sid
                       for u in shard.user_parts)

    def test_community_members_shard_by_member(self, dataset):
        shards = split_dataset(dataset, NUM_SHARDS)
        for label, members in dataset.community_members.items():
            rebuilt = sorted(
                m for s in shards
                for m in s.community_members.get(label, []))
            assert rebuilt == sorted(members)
            for sid, shard in enumerate(shards):
                assert all(shard_of(m, NUM_SHARDS) == sid
                           for m in shard.community_members.get(label, []))

    def test_index_codec_round_trips(self, dataset):
        shard = split_dataset(dataset, NUM_SHARDS)[0]
        back = shard_index_from_json(shard_index_json(shard))
        assert back.company_parts == shard.company_parts
        assert back.funding == shard.funding
        assert back.user_parts == shard.user_parts
        assert back.follows_out == {k: list(v) for k, v
                                    in shard.follows_out.items()}
        assert back.follower_counts == shard.follower_counts
        assert back.community_of == shard.community_of
        assert back.community_members == shard.community_members
        # codec output itself is deterministic
        assert shard_index_json(shard) == shard_index_json(back)


class TestOracleEquality:
    """A fully-covered sharded answer is byte-identical to the oracle."""

    @pytest.mark.parametrize("kind", ["company", "investor", "engagement",
                                      "community"])
    def test_point_and_community(self, crawled_platform, dataset, kind):
        service = _service(crawled_platform)
        key = dataset.keys_for(kind)[0]
        result = service.handle(ServeRequest(kind=kind, key=key))
        assert result.status == STATUS_FRESH
        assert not result.coverage["partial"]
        oracle = dataset.run(kind, key, crawled_platform.dfs).value
        assert json.dumps(result.value, sort_keys=True) \
            == json.dumps(oracle, sort_keys=True)

    @pytest.mark.parametrize("depth", [1, 2])
    def test_neighborhood(self, crawled_platform, dataset, depth):
        service = _service(crawled_platform)
        key = dataset.keys_for("neighborhood")[0]
        result = service.handle(ServeRequest(kind="neighborhood", key=key,
                                             depth=depth))
        assert result.status == STATUS_FRESH
        oracle = dataset.run("neighborhood", key, crawled_platform.dfs,
                             depth=depth).value
        assert json.dumps(result.value, sort_keys=True) \
            == json.dumps(oracle, sort_keys=True)

    def test_persisted_indexes_exist(self, crawled_platform):
        service = _service(crawled_platform)
        for server in service.servers:
            assert crawled_platform.dfs.exists(server.index_path)


class TestKillMatrix:
    """Killing each shard in turn: answered, partial, coverage exact."""

    def test_each_shard(self, crawled_platform, dataset):
        keys = _community_keys(dataset)
        for victim in range(NUM_SHARDS):
            service = _service(crawled_platform)
            service.servers[victim].kill_all()
            key = next(k for k in keys
                       if shard_of(k, NUM_SHARDS) != victim)
            result = service.handle(ServeRequest(kind="community", key=key))
            assert result.answered
            assert result.latency_s <= 0.25 + 1e-9
            assert result.status == STATUS_PARTIAL
            cov = result.coverage
            assert cov["partial"]
            assert cov["shards_total"] == NUM_SHARDS
            assert cov["shards_answered"] == NUM_SHARDS - 1
            assert cov["per_shard"][str(victim)] == SHARD_DEAD
            # exact coverage arithmetic against the oracle membership
            label = dataset.community_of[key]
            members = dataset.community_members[label]
            lost = [m for m in members
                    if shard_of(m, NUM_SHARDS) == victim]
            assert result.value["community"] == label
            assert result.value["size"] == len(members) - len(lost)

    def test_point_query_on_dead_shard_degrades(self, crawled_platform,
                                                dataset):
        service = _service(crawled_platform)
        key = dataset.keys_for("company")[0]
        victim = shard_of(key, NUM_SHARDS)
        service.servers[victim].kill_all()
        result = service.handle(ServeRequest(kind="company", key=key))
        assert result.status != STATUS_FRESH
        assert result.latency_s <= 0.25 + 1e-9
        assert result.coverage["per_shard"][str(victim)] == SHARD_DEAD
        assert service.metrics.per_shard[victim].failed_dead == 1


class TestShardFaultPlumbing:
    def test_forced_kill_lands_on_predicted_target(self, crawled_platform,
                                                   dataset):
        faults = FaultSchedule.none()
        faults.force_window(FAULT_KILL_SHARD, start=0, span=1_000_000)
        victim = kill_target(faults.seed, 0, NUM_SHARDS)
        service = _service(crawled_platform, faults=faults)
        service.handle(ServeRequest(kind="company",
                                    key=dataset.keys_for("company")[0]))
        assert service.servers[victim].replica_count == 0
        alive = [s.shard_id for s in service.servers if s.replica_count]
        assert alive == [s for s in range(NUM_SHARDS) if s != victim]

    def test_kill_window_is_one_shot(self, crawled_platform, dataset):
        faults = FaultSchedule.none()
        faults.force_window(FAULT_KILL_SHARD, start=0, span=1_000_000)
        victim = kill_target(faults.seed, 0, NUM_SHARDS)
        service = _service(crawled_platform, faults=faults)
        keys = dataset.keys_for("company")
        service.handle(ServeRequest(kind="company", key=keys[0]))
        assert service.servers[victim].replica_count == 0
        # a revived shard stays revived: the window was consumed
        service.servers[victim].reboot_one(service.clock.now(), 0.0)
        service.handle(ServeRequest(kind="company", key=keys[1]))
        assert service.servers[victim].replica_count == 1

    def test_partition_marks_shard_unreachable(self, crawled_platform,
                                               dataset):
        faults = FaultSchedule.none()
        faults.force_window(FAULT_PARTITION_SHARD, start=0,
                            span=1_000_000)
        victim = partition_target(faults.seed, 0, NUM_SHARDS)
        service = _service(crawled_platform, faults=faults)
        key = next(k for k in _community_keys(dataset)
                   if shard_of(k, NUM_SHARDS) != victim)
        result = service.handle(ServeRequest(kind="community", key=key))
        assert result.status == STATUS_PARTIAL
        assert result.coverage["per_shard"][str(victim)] \
            == SHARD_PARTITIONED
        assert service.metrics.per_shard[victim].failed_partitioned >= 1
        # the shard's replicas are fine — only the network path is cut
        assert service.servers[victim].replica_count == 2

    def test_slow_replica_still_answers_in_deadline(self, crawled_platform,
                                                    dataset):
        faults = FaultSchedule.none()
        faults.force_window(FAULT_SLOW_REPLICA, start=0, span=1_000_000,
                            duration=0.06)
        shard, _draw = slow_replica_target(faults.seed, 0, NUM_SHARDS)
        service = _service(crawled_platform, faults=faults)
        key = next(k for k in dataset.keys_for("company")
                   if shard_of(k, NUM_SHARDS) == shard)
        result = service.handle(ServeRequest(kind="company", key=key))
        assert result.answered
        assert result.latency_s <= 0.25 + 1e-9

    def test_target_helpers_are_deterministic(self):
        for ws in range(10):
            assert kill_target(7, ws, NUM_SHARDS) \
                == kill_target(7, ws, NUM_SHARDS)
            assert 0 <= kill_target(7, ws, NUM_SHARDS) < NUM_SHARDS
            assert 0 <= partition_target(7, ws, NUM_SHARDS) < NUM_SHARDS
            shard, draw = slow_replica_target(7, ws, NUM_SHARDS)
            assert 0 <= shard < NUM_SHARDS
            assert draw >= 0


class TestShardedReplay:
    """Chaos replay: autoscaler rebuilds the shard, runs are identical."""

    def _run(self, platform):
        faults = FaultSchedule.from_profile("serve-shard-chaos", seed=3)
        faults.force_window(FAULT_KILL_SHARD, start=30, span=1)
        service = platform.sharded_query_service(
            config=ServeConfig(qps_limit=10_000.0, queue_depth=64),
            shard_config=ShardConfig(num_shards=NUM_SHARDS, replicas=2),
            autoscale=AutoscaleConfig(tick_every=10, replica_boot_s=0.1),
            faults=faults)
        profile = LoadProfile(qps=120.0, duration_s=1.5, seed=9)
        report = replay(service, generate_schedule(
            profile, platform.serve_dataset()))
        return report, service

    def test_autoscaler_rebuilds_killed_shard(self, crawled_platform):
        report, service = self._run(crawled_platform)
        victim = kill_target(3, 30, NUM_SHARDS)
        rebuilds = [d for d in service.metrics.scaling_decisions
                    if d[1] == victim and d[4] == REASON_DEAD]
        assert rebuilds
        assert service.servers[victim].replica_count >= 1
        assert report.scaling_decisions == len(
            service.metrics.scaling_decisions)

    def test_same_seed_runs_identical(self, crawled_platform):
        first, svc1 = self._run(crawled_platform)
        second, svc2 = self._run(crawled_platform)
        assert first.to_json() == second.to_json()
        assert svc1.metrics.to_json() == svc2.metrics.to_json()
        assert svc1.metrics.scaling_decisions \
            == svc2.metrics.scaling_decisions

    def test_every_coverage_is_arithmetically_exact(self, crawled_platform):
        report, _service_ = self._run(crawled_platform)
        seen_coverage = 0
        for result in report.results:
            cov = result.coverage
            if cov is None:
                continue
            seen_coverage += 1
            answered = sum(1 for s in cov["per_shard"].values()
                           if s == SHARD_OK)
            assert cov["shards_answered"] == answered
            assert cov["shards_total"] == len(cov["per_shard"])
            assert cov["partial"] == (answered < cov["shards_total"])
        assert seen_coverage > 0


class TestTenantLoadgen:
    def test_multi_tenant_schedule_is_deterministic(self, dataset):
        profile = LoadProfile(qps=100.0, duration_s=1.0, seed=5, tenants=3)
        first = generate_schedule(profile, dataset)
        second = generate_schedule(profile, dataset)
        assert [(r.arrival_s, r.tenant, r.kind, r.key) for r in first] \
            == [(r.arrival_s, r.tenant, r.kind, r.key) for r in second]
        tenants = {r.tenant for r in first}
        assert tenants <= {"t0", "t1", "t2"}
        assert len(tenants) > 1

    def test_zipf_skew_makes_t0_hottest(self, dataset):
        profile = LoadProfile(qps=300.0, duration_s=2.0, seed=5,
                              tenants=3, tenant_zipf_alpha=1.5)
        counts = {}
        for request in generate_schedule(profile, dataset):
            counts[request.tenant] = counts.get(request.tenant, 0) + 1
        assert counts["t0"] > counts.get("t1", 0) > counts.get("t2", 0)

    def test_single_tenant_schedule_unchanged(self, dataset):
        base = LoadProfile(qps=100.0, duration_s=1.0, seed=5)
        schedule = generate_schedule(base, dataset)
        assert all(r.tenant == "default" for r in schedule)
