"""Tests for the planted-causality world dynamics."""

import pytest

from repro.world.dynamics import WorldDynamics


class TestStep:
    def test_day_advances(self, fresh_world):
        dynamics = WorldDynamics(fresh_world, seed=1)
        start = fresh_world.day
        dynamics.step()
        assert fresh_world.day == start + 1

    def test_run_returns_logs(self, fresh_world):
        dynamics = WorldDynamics(fresh_world, seed=1)
        logs = dynamics.run(5)
        assert len(logs) == 5
        assert [log.day for log in logs] == list(range(1, 6))

    def test_engagement_touches_social_accounts(self, fresh_world):
        raising = [c for c in fresh_world.companies.values()
                   if c.currently_raising
                   and c.twitter_profile_id is not None]
        if not raising:
            pytest.skip("no raising company with twitter in this seed")
        before = {c.company_id:
                  fresh_world.twitter_profiles[c.twitter_profile_id]
                  .statuses_count for c in raising}
        WorldDynamics(fresh_world, seed=1).run(30)
        after = {c.company_id:
                 fresh_world.twitter_profiles[c.twitter_profile_id]
                 .statuses_count for c in raising}
        assert any(after[cid] > before[cid] for cid in before)

    def test_closing_sets_funding_state(self, fresh_world):
        dynamics = WorldDynamics(fresh_world, seed=1,
                                 base_close_hazard=0.5)
        raising_before = [c.company_id
                          for c in fresh_world.companies.values()
                          if c.currently_raising]
        logs = dynamics.run(10)
        closed = sum(log.rounds_closed for log in logs)
        assert closed > 0
        for cid in raising_before:
            company = fresh_world.companies[cid]
            if company.raised_funding and not company.currently_raising:
                assert company.rounds
                assert company.crunchbase_id is not None

    def test_new_campaigns_can_start(self, fresh_world):
        dynamics = WorldDynamics(fresh_world, seed=2)
        logs = dynamics.run(60)
        assert sum(log.new_campaigns for log in logs) >= 0

    def test_deterministic_given_seed(self):
        from repro.world.config import WorldConfig
        from repro.world.generator import generate_world
        results = []
        for _ in range(2):
            world = generate_world(WorldConfig.tiny(seed=23))
            logs = WorldDynamics(world, seed=9).run(15)
            results.append([(l.engagement_events, l.rounds_closed)
                            for l in logs])
        assert results[0] == results[1]
