"""Tests for the longitudinal panel analysis (§7 extension)."""

import pytest

from repro.analysis.longitudinal import analyze_snapshots
from repro.crawl.snapshots import SnapshotScheduler
from repro.dfs.filesystem import MiniDfs
from repro.sources.hub import SourceHub
from repro.world.config import WorldConfig
from repro.world.dynamics import WorldDynamics
from repro.world.generator import generate_world


@pytest.fixture(scope="module")
def panel():
    world = generate_world(WorldConfig.tiny(seed=41))
    hub = SourceHub.from_world(world)
    # Aggressive dynamics so a tiny 25-day run contains close events.
    dynamics = WorldDynamics(world, seed=3, base_close_hazard=0.03,
                             engagement_to_funding_lift=4.0)
    dfs = MiniDfs()
    SnapshotScheduler(hub, dynamics, dfs).run(days=25)
    return analyze_snapshots(dfs, window=3)


class TestPanel:
    def test_days_tracked(self, panel):
        assert panel.days == 25

    def test_startups_tracked(self, panel):
        assert panel.tracked_startups > 0

    def test_close_events_observed(self, panel):
        assert panel.close_events > 0

    def test_engagement_precedes_funding(self, panel):
        """The planted causal direction must be recovered: engagement
        growth before a close exceeds control windows."""
        assert panel.pre_event_lift > 1.0

    def test_reverse_effect_also_present(self, panel):
        """The confound (followers jump after funding) is planted too."""
        assert panel.post_event_follower_bump > 0.0


class TestErrors:
    def test_missing_snapshots_raise(self):
        with pytest.raises(ValueError):
            analyze_snapshots(MiniDfs(), root="/nothing")
