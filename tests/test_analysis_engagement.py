"""Tests for the Figure 6 engagement table."""

import pytest


@pytest.fixture(scope="module")
def table(crawled_platform):
    return crawled_platform.run_plugin("engagement_table")


class TestTableShape:
    def test_eleven_rows(self, table):
        assert len(table.rows) == 11

    def test_total_matches_crawl(self, table, crawled_platform):
        assert table.total_companies == len(crawled_platform.world.companies)

    def test_presence_counts_partition(self, table, crawled_platform):
        no_social = table.row("No social media presence")
        fb = table.row("Facebook only")
        tw = table.row("Twitter only")
        both = table.row("Facebook and Twitter")
        assert (no_social.companies + fb.companies + tw.companies
                - both.companies) == table.total_companies

    def test_video_rows_partition(self, table):
        video = table.row("Presence of demo video")
        no_video = table.row("No demo video")
        assert video.companies + no_video.companies == table.total_companies

    def test_medians_computed_from_data(self, table, crawled_platform):
        import numpy as np
        likes = [p.likes for p in
                 crawled_platform.world.facebook_pages.values()]
        assert table.median_likes == pytest.approx(np.median(likes))


class TestPaperShape:
    """The qualitative claims of §4 must hold on crawled data."""

    def test_social_presence_lifts_success(self, table):
        assert table.success_lift("Facebook only") > 5
        assert table.success_lift("Twitter only") > 5

    def test_diminishing_returns_of_both(self, table):
        both = table.row("Facebook and Twitter").success_pct
        fb = table.row("Facebook only").success_pct
        assert both < 2.5 * fb  # no multiplicative stacking

    def test_video_lift(self, table):
        video = table.row("Presence of demo video").success_pct
        no_video = table.row("No demo video").success_pct
        assert video > 4 * no_video

    def test_engagement_beats_mere_presence(self, table):
        hi_likes = next(r for r in table.rows
                        if "likes)" in r.label and "Twitter" not in r.label)
        assert hi_likes.success_pct > table.row("Facebook only").success_pct

    def test_combined_engagement_strongest(self, table):
        combined = [r for r in table.rows if "and Twitter (" in r.label]
        assert combined
        fb_only = table.row("Facebook only").success_pct
        for row in combined:
            assert row.success_pct > fb_only

    def test_render_contains_all_rows(self, table):
        text = table.render()
        for row in table.rows:
            assert row.label in text

    def test_unknown_row_raises(self, table):
        with pytest.raises(KeyError):
            table.row("Myspace only")
