"""Tests for the hypothesis translation layer."""

import pytest

from repro.core.theories import Hypothesis, TheoryEngine
from repro.engine.dataframe import DataFrame
from repro.util.errors import ConfigError


class TestParsing:
    def test_simple_binary(self):
        h = Hypothesis.parse("raised ~ has_facebook")
        assert (h.outcome, h.predictor) == ("raised", "has_facebook")
        assert h.op is None and not h.negate

    def test_negation(self):
        h = Hypothesis.parse("raised ~ !has_twitter")
        assert h.negate

    def test_median_threshold(self):
        h = Hypothesis.parse("raised ~ fb_likes > median")
        assert (h.op, h.threshold) == (">", "median")

    def test_numeric_threshold(self):
        h = Hypothesis.parse("raised ~ tw_statuses < 42.5")
        assert (h.op, h.threshold) == ("<", "42.5")

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            Hypothesis.parse("raised depends on facebook")


@pytest.fixture(scope="module")
def engine(crawled_platform):
    return TheoryEngine.over_platform(crawled_platform)


class TestBinaryOutcomes:
    def test_facebook_hypothesis_supported(self, engine):
        result = engine.test("raised ~ has_facebook")
        assert result.kind == "binary"
        assert result.effect > 3          # strong odds ratio
        assert result.p_value < 0.01
        assert result.significant

    def test_group_means_ordered(self, engine):
        result = engine.test("raised ~ has_twitter")
        assert result.exposed.outcome_mean > result.control.outcome_mean

    def test_wilson_cis_bracket_means(self, engine):
        result = engine.test("raised ~ has_video")
        for group in (result.exposed, result.control):
            assert group.ci_low <= group.outcome_mean <= group.ci_high

    def test_negated_predictor_flips_groups(self, engine):
        plain = engine.test("raised ~ has_facebook")
        flipped = engine.test("raised ~ !has_facebook")
        assert flipped.exposed.count == plain.control.count
        assert flipped.exposed.outcome_mean \
            == pytest.approx(plain.control.outcome_mean)

    def test_median_split(self, engine):
        result = engine.test("raised ~ follower_count > median")
        assert result.exposed.count > 0
        assert result.control.count > 0

    def test_render_mentions_verdict(self, engine):
        text = engine.test("raised ~ has_facebook").render()
        assert "odds ratio" in text
        assert "SUPPORTED" in text or "not significant" in text


class TestNumericOutcomes:
    def test_funding_vs_video(self, engine):
        result = engine.test("total_funding_usd ~ has_video")
        assert result.kind == "numeric"
        assert result.effect > 0          # video companies raise more

    def test_effect_is_difference_of_means(self, engine):
        result = engine.test("tw_followers ~ has_facebook")
        assert result.effect == pytest.approx(
            result.exposed.outcome_mean - result.control.outcome_mean)


class TestErrors:
    def test_unknown_variable(self, engine):
        with pytest.raises(ConfigError, match="unknown variable"):
            engine.test("raised ~ myspace_friends")

    def test_non_splitting_predictor(self, engine):
        with pytest.raises(ConfigError, match="does not split"):
            engine.test("raised ~ follower_count > -1")

    def test_test_all(self, engine):
        results = engine.test_all(["raised ~ has_facebook",
                                   "raised ~ has_twitter"])
        assert len(results) == 2

    def test_custom_fact_table(self, crawled_platform):
        records = [{"win": i % 2 == 0, "flag": i < 5} for i in range(10)]
        engine = TheoryEngine(DataFrame.from_records(
            crawled_platform.sc, records))
        result = engine.test("win ~ flag")
        assert result.exposed.count == 5
