"""Tests for the simulated clock."""

import pytest

from repro.util.clock import SimClock, WallClock


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(start=5.0).now() == 5.0

    def test_sleep_advances(self):
        clock = SimClock()
        clock.sleep(10.0)
        assert clock.now() == 10.0

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            SimClock().sleep(-1.0)

    def test_zero_sleep_is_noop(self):
        clock = SimClock(start=3.0)
        clock.sleep(0.0)
        assert clock.now() == 3.0

    def test_timers_fire_in_order(self):
        clock = SimClock()
        fired = []
        clock.call_at(5.0, lambda: fired.append("b"))
        clock.call_at(2.0, lambda: fired.append("a"))
        clock.call_at(9.0, lambda: fired.append("c"))
        clock.advance(6.0)
        assert fired == ["a", "b"]
        assert clock.pending_timers == 1

    def test_timer_sees_its_due_time(self):
        clock = SimClock()
        seen = []
        clock.call_later(4.0, lambda: seen.append(clock.now()))
        clock.advance(10.0)
        assert seen == [4.0]
        assert clock.now() == 10.0

    def test_same_due_time_fifo(self):
        clock = SimClock()
        fired = []
        clock.call_at(1.0, lambda: fired.append(1))
        clock.call_at(1.0, lambda: fired.append(2))
        clock.advance(2.0)
        assert fired == [1, 2]


class TestWallClock:
    def test_now_monotone(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_sleep_zero_returns(self):
        WallClock().sleep(0.0)  # must not raise or block
