"""Shared fixtures.

The expensive artifacts (a generated world, a fully crawled platform)
are session-scoped: the tiny world builds in well under a second and
many test modules read from it without mutating it.
"""

from __future__ import annotations

import faulthandler
import os

import pytest

from repro.core.platform import ExploratoryPlatform
from repro.graph.bipartite import BipartiteGraph
from repro.world.config import WorldConfig
from repro.world.generator import World, generate_world


def pytest_configure(config):
    # A wedged supervisor/pool test would otherwise hang CI silently;
    # dump every thread's stack if any single run exceeds the budget.
    faulthandler.enable()
    timeout = float(os.environ.get("REPRO_FAULTHANDLER_TIMEOUT", "0") or 0)
    if timeout > 0:
        faulthandler.dump_traceback_later(timeout, repeat=True, exit=False)


def pytest_unconfigure(config):
    faulthandler.cancel_dump_traceback_later()


@pytest.fixture(autouse=True)
def _no_leaked_shm_segments():
    """Every test must leave ``/dev/shm`` as it found it.

    The columnar shuffle creates engine-owned shared-memory segments
    (names prefixed ``rpshm``); the driver unlinks them at job end even
    when the job fails. A segment that survives a test is a leak — the
    guard unlinks it so one bad test cannot poison the rest of the
    suite, then fails loudly.
    """
    from repro.engine import columnar
    before = set(columnar.list_segments(columnar.SHM_BASE_PREFIX))
    yield
    after = set(columnar.list_segments(columnar.SHM_BASE_PREFIX))
    leaked = sorted(after - before)
    for name in leaked:
        columnar.release_segments(names=[name])
    assert not leaked, f"leaked shared-memory segments: {leaked}"


@pytest.fixture(scope="session")
def tiny_world() -> World:
    """A ~2k-company world; read-only for all tests."""
    return generate_world(WorldConfig.tiny(seed=11))


@pytest.fixture(scope="session")
def crawled_platform(tiny_world) -> ExploratoryPlatform:
    """A platform that has already run the full §3 crawl; read-only."""
    platform = ExploratoryPlatform(tiny_world)
    platform.run_full_crawl()
    yield platform
    platform.close()


@pytest.fixture(scope="session")
def investor_graph(crawled_platform) -> BipartiteGraph:
    return crawled_platform.investor_graph()


@pytest.fixture()
def fresh_world() -> World:
    """A small world safe to mutate (dynamics tests)."""
    return generate_world(WorldConfig.tiny(seed=23))
