"""Tests for partition-level recovery, checkpointing, speculation,
zombie deadlines, and the process-pool rebuild budget."""

import multiprocessing
import os
import threading
import time

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.engine.backends import (ProcessBackend, SerialBackend,
                                   ThreadBackend)
from repro.engine.checkpoint import CheckpointManager
from repro.engine.context import SparkLiteContext
from repro.engine.supervisor import (ExecutorLostError, SupervisePolicy,
                                     TaskSupervisor)
from repro.net.faults import (FAULT_KILL_WORKER, FaultSchedule, FaultSpec)
from repro.util.errors import EngineError

# module-level state registry: picklable functions, per-test state
_LOCK = threading.Lock()
_SEEN = set()


@pytest.fixture(autouse=True)
def _reset_registry():
    with _LOCK:
        _SEEN.clear()
    yield


def _double(x):
    return x * 2


def _die_in_worker(x):
    """Kills the hosting process unless it is the driver."""
    if multiprocessing.current_process().name != "MainProcess":
        os._exit(1)
    return x + 1


def _die_once_after_siblings(x):
    """Partition 3 waits for its siblings, then kills its worker once.

    The "died" marker is a file so the decision crosses the process
    boundary: the relaunched attempt (fresh worker or driver) sees the
    marker and computes normally. Sleeping first lets every *other*
    partition finish, so recovery has something to preserve.
    """
    if x == 3:
        marker = os.path.join(os.environ["REPRO_RECOVERY_MARKER_DIR"],
                              "died")
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            time.sleep(0.4)
            if multiprocessing.current_process().name != "MainProcess":
                os._exit(1)
            raise ExecutorLostError("simulated executor loss")
    return x * 2


def _slow_once_on_seven(x):
    """x == 7 straggles on its first execution only."""
    with _LOCK:
        first = ("slow", x) not in _SEEN
        _SEEN.add(("slow", x))
    if x == 7 and first:
        time.sleep(0.5)
    return x * 3


def _hang_once_on_two(x):
    """x == 2 wedges past any reasonable deadline, first time only."""
    with _LOCK:
        first = ("hang", x) not in _SEEN
        _SEEN.add(("hang", x))
    if x == 2 and first:
        time.sleep(0.6)
    return x + 100


class TestPoolRebuildBudget:
    """Satellite: the rebuild budget is explicit and retry-independent."""

    def test_free_rebuild_even_with_zero_task_retries(self):
        # worker loss is not the task's fault: one rebuild comes free
        backend = ProcessBackend(parallelism=2, task_retries=0)
        try:
            run = backend.run(_die_in_worker, [1, 2, 3, 4])
            assert run.results == [2, 3, 4, 5]
            assert backend.pool_rebuilds == 1
            assert run.pool_rebuilds == 1
            assert run.fell_back  # second crash exhausted the budget
        finally:
            backend.close()

    def test_budget_independent_of_task_retries(self):
        # the old code granted max(1, task_retries) rebuilds; the budget
        # is its own knob now and retries don't inflate it
        backend = ProcessBackend(parallelism=2, task_retries=3)
        try:
            run = backend.run(_die_in_worker, [1, 2])
            assert run.results == [2, 3]
            assert backend.pool_rebuilds == 1
        finally:
            backend.close()

    def test_budget_zero_goes_straight_to_driver(self):
        backend = ProcessBackend(parallelism=2, task_retries=1,
                                 pool_rebuild_budget=0)
        try:
            run = backend.run(_die_in_worker, [1, 2, 3])
            assert run.results == [2, 3, 4]
            assert backend.pool_rebuilds == 0
            assert run.fell_back
        finally:
            backend.close()

    def test_budget_two_rebuilds_twice(self):
        backend = ProcessBackend(parallelism=2, task_retries=0,
                                 pool_rebuild_budget=2)
        try:
            run = backend.run(_die_in_worker, [1, 2])
            assert run.results == [2, 3]
            assert backend.pool_rebuilds == 2
        finally:
            backend.close()

    def test_negative_budget_rejected(self):
        with pytest.raises(EngineError):
            ProcessBackend(pool_rebuild_budget=-1)


class TestPartitionLevelRecovery:
    """A lost worker recomputes only the lost partitions."""

    def test_only_lost_partitions_recompute(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RECOVERY_MARKER_DIR", str(tmp_path))
        backend = ProcessBackend(parallelism=4, task_retries=0)
        try:
            run = backend.run(_die_once_after_siblings, [1, 2, 3, 4])
            assert run.results == [2, 4, 6, 8]
            assert run.lost_executors >= 1
            # strictly fewer than the full batch was relaunched: the
            # three partitions that finished before the crash were kept
            assert 1 <= run.recomputed_partitions < 4
            assert backend.pool_rebuilds == 1
            assert not run.fell_back
        finally:
            backend.close()

    def test_recovery_surfaces_in_job_metrics(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RECOVERY_MARKER_DIR", str(tmp_path))
        with SparkLiteContext(parallelism=4, backend="process") as sc:
            out = (sc.parallelize([1, 2, 3, 4], 4)
                   .map(_die_once_after_siblings).collect())
            assert out == [2, 4, 6, 8]
            metrics = sc.last_job_metrics
            assert metrics.lost_executors >= 1
            assert 1 <= metrics.recomputed_partitions < 4
            assert metrics.pool_rebuilds == 1

    @pytest.mark.parametrize("backend_name", ["serial", "thread"])
    def test_injected_executor_loss_recovers_in_process(self, backend_name):
        # a kill_worker fault on the in-process backends raises
        # ExecutorLostError; the supervisor relaunches the partition
        faults = FaultSchedule([FaultSpec(FAULT_KILL_WORKER, 0.999)],
                               seed=5)
        with SparkLiteContext(parallelism=2, backend=backend_name,
                              engine_faults=faults) as sc:
            out = sc.parallelize([1, 2, 3, 4], 4).map(_double).collect()
            assert out == [2, 4, 6, 8]
            metrics = sc.last_job_metrics
            assert metrics.lost_executors >= 1
            assert metrics.recomputed_partitions >= 1
            assert metrics.retried_tasks >= 1

    def test_loss_does_not_consume_task_retry_budget(self):
        # executor loss with task_retries=0 must still complete
        faults = FaultSchedule([FaultSpec(FAULT_KILL_WORKER, 0.999)],
                               seed=5)
        with SparkLiteContext(parallelism=1, backend="serial",
                              task_retries=0,
                              engine_faults=faults) as sc:
            assert sc.parallelize([5], 1).map(_double).collect() == [10]
            assert sc.last_job_metrics.lost_executors >= 1


def _pair_mod5(x):
    return (x % 5, x)


def _sum(a, b):
    return a + b


class TestColumnarShmRecovery:
    """Worker loss during a shared-memory exchange: only the lost
    partitions recompute, re-sealed segments replace the orphans, and
    the job-end sweep leaves ``/dev/shm`` clean."""

    @pytest.fixture(autouse=True)
    def _shm_or_skip(self):
        from repro.engine.columnar import shm_available
        if not shm_available():
            pytest.skip("no shared memory on this platform")

    def test_lost_worker_recomputes_only_lost_partitions(self, tmp_path,
                                                         monkeypatch):
        from repro.engine.columnar import SHM_BASE_PREFIX, list_segments
        monkeypatch.setenv("REPRO_RECOVERY_MARKER_DIR", str(tmp_path))
        with SparkLiteContext(parallelism=4, backend="process",
                              engine_columnar=True, batch_rows=2) as sc:
            out = (sc.parallelize([1, 2, 3, 4], 4)
                   .map(_die_once_after_siblings)
                   .map(_pair_mod5)
                   .reduce_by_key(_sum)
                   .collect())
            metrics = sc.last_job_metrics
        assert sorted(out) == [(1, 6), (2, 2), (3, 8), (4, 4)]
        assert metrics.lost_executors >= 1
        assert 1 <= metrics.recomputed_partitions < 4
        assert metrics.shuffle_bytes_shm > 0
        assert metrics.shuffle_bytes == \
            metrics.shuffle_bytes_shm + metrics.shuffle_bytes_pickled
        assert list_segments(SHM_BASE_PREFIX) == []

    def test_injected_loss_with_forced_shm_in_process(self):
        from repro.engine.columnar import SHM_BASE_PREFIX, list_segments
        faults = FaultSchedule([FaultSpec(FAULT_KILL_WORKER, 0.999)],
                               seed=5)
        with SparkLiteContext(parallelism=2, backend="serial",
                              engine_columnar=True, batch_rows=2,
                              shuffle_shm=True,
                              engine_faults=faults) as sc:
            out = (sc.parallelize([1, 2, 3, 4], 4)
                   .map(_pair_mod5).reduce_by_key(_sum).collect())
            metrics = sc.last_job_metrics
        assert sorted(out) == [(1, 1), (2, 2), (3, 3), (4, 4)]
        assert metrics.lost_executors >= 1
        assert metrics.recomputed_partitions >= 1
        assert list_segments(SHM_BASE_PREFIX) == []


class TestSpeculativeExecution:
    def test_straggler_gets_a_backup_that_wins(self):
        backend = ThreadBackend(parallelism=4)
        backend.configure(parallelism=4, task_retries=0,
                          policy=SupervisePolicy(
                              speculation=True,
                              speculation_min_runtime_s=0.05,
                              heartbeat_s=0.01))
        try:
            start = time.monotonic()
            run = backend.run(_slow_once_on_seven, [1, 2, 3, 7])
            elapsed = time.monotonic() - start
            assert run.results == [3, 6, 9, 21]
            assert run.speculative_launched >= 1
            assert run.speculative_won >= 1
            # the backup finished long before the 0.5s straggler
            assert elapsed < 0.45
        finally:
            backend.close()

    def test_no_speculation_on_uniform_stage(self):
        backend = ThreadBackend(parallelism=4)
        backend.configure(parallelism=4, task_retries=0,
                          policy=SupervisePolicy(speculation=True))
        try:
            run = backend.run(_double, [1, 2, 3, 4])
            assert run.results == [2, 4, 6, 8]
            assert run.speculative_launched == 0
            assert run.attempts == 4
        finally:
            backend.close()

    def test_outputs_identical_with_and_without_speculation(self):
        with SparkLiteContext(parallelism=2, backend="serial") as oracle:
            expected = (oracle.parallelize(range(40), 8)
                        .map(lambda x: (x % 5, x))
                        .reduce_by_key(lambda a, b: a + b).collect())
        with SparkLiteContext(parallelism=4, backend="thread",
                              speculation=True) as sc:
            got = (sc.parallelize(range(40), 8)
                   .map(lambda x: (x % 5, x))
                   .reduce_by_key(lambda a, b: a + b).collect())
        assert got == expected


class TestZombieDeadline:
    def test_wedged_task_is_replaced_in_driver(self):
        backend = ThreadBackend(parallelism=2)
        backend.configure(parallelism=2, task_retries=0,
                          policy=SupervisePolicy(task_deadline_s=0.15,
                                                 heartbeat_s=0.01))
        try:
            start = time.monotonic()
            run = backend.run(_hang_once_on_two, [1, 2])
            elapsed = time.monotonic() - start
            assert run.results == [101, 102]
            assert run.zombie_tasks == 1
            # the job finished on the replacement, not the 0.6s hang
            assert elapsed < 0.55
        finally:
            backend.close()

    def test_deadline_surfaces_in_job_metrics(self):
        with SparkLiteContext(parallelism=2, backend="thread",
                              task_deadline=0.15) as sc:
            out = sc.parallelize([1, 2], 2).map(_hang_once_on_two).collect()
            assert out == [101, 102]
            assert sc.last_job_metrics.zombie_tasks == 1

    def test_invalid_deadline_rejected(self):
        with pytest.raises(EngineError):
            SparkLiteContext(parallelism=1, task_deadline=0.0)


class TestCheckpoint:
    @pytest.fixture()
    def dfs(self):
        return MiniDfs(num_datanodes=2)

    @pytest.fixture()
    def sc(self, dfs):
        context = SparkLiteContext(parallelism=2,
                                   checkpoint_dir="/engine/checkpoints",
                                   checkpoint_dfs=dfs)
        yield context
        context.stop()

    def test_checkpoint_requires_a_directory(self):
        with SparkLiteContext(parallelism=1) as sc:
            with pytest.raises(EngineError):
                sc.parallelize([1]).checkpoint()

    def test_checkpoint_written_once_and_restored(self, sc, dfs):
        rdd = sc.parallelize(range(10), 2).map(_double).checkpoint()
        assert rdd.collect() == [x * 2 for x in range(10)]
        assert sc.last_job_metrics.checkpoint_writes == 1
        assert rdd.is_checkpointed
        ckpt_dir = f"/engine/checkpoints/rdd-{rdd.rdd_id}"
        assert len(dfs.listdir(ckpt_dir + "/")) == 3  # 2 parts + manifest
        # a later job restores from the checkpoint: zero recomputation
        assert rdd.count() == 10
        metrics = sc.last_job_metrics
        assert metrics.checkpoint_hits == 1
        assert metrics.rdds_materialized == 0
        # and it is not written again
        assert metrics.checkpoint_writes == 0

    def test_checkpoint_truncates_lineage(self, sc):
        base = sc.parallelize(range(8), 2).map(_double).checkpoint()
        base.collect()
        derived = base.map(lambda x: x + 1)
        assert derived.collect() == [x * 2 + 1 for x in range(8)]
        metrics = sc.last_job_metrics
        # only `derived` computed; base restored, its source untouched
        assert metrics.rdds_materialized == 1
        assert metrics.checkpoint_hits == 1

    def test_torn_checkpoint_recomputes_from_lineage(self, sc, dfs):
        rdd = sc.parallelize(range(6), 2).map(_double).checkpoint()
        rdd.collect()
        # tear the checkpoint: delete one committed part file
        part = f"/engine/checkpoints/rdd-{rdd.rdd_id}/part-00000.pkl.z"
        dfs.delete(part)
        assert rdd.collect() == [x * 2 for x in range(6)]
        metrics = sc.last_job_metrics
        assert metrics.checkpoint_hits == 0
        assert metrics.rdds_materialized >= 1

    def test_manager_round_trip_and_commit_order(self, dfs):
        manager = CheckpointManager(dfs, "/ckpt")
        parts = [[1, 2], [], [{"k": "v"}]]
        manager.put(7, parts)
        assert 7 in manager
        assert manager.get(7) == parts
        assert manager.num_partitions(7) == 3
        # the manifest is the commit point: without it, no checkpoint
        dfs.delete("/ckpt/rdd-7/_meta.json")
        assert 7 not in manager
        assert manager.get(7) is None

    def test_delete_removes_all_files(self, dfs):
        manager = CheckpointManager(dfs, "/ckpt")
        manager.put(3, [[1], [2]])
        manager.delete(3)
        assert 3 not in manager
        assert dfs.listdir("/ckpt/rdd-3/") == []


class TestCheckpointSurvivesCacheEviction:
    """Satellite: evicted cache + checkpoint => restore, not recompute."""

    def test_evicted_cache_restores_from_checkpoint(self):
        dfs = MiniDfs(num_datanodes=2)
        # cache budget of one byte: everything is evicted immediately,
        # and with no cache_dfs attached evicted entries are dropped
        with SparkLiteContext(parallelism=2, cache_budget=1,
                              checkpoint_dir="/engine/checkpoints",
                              checkpoint_dfs=dfs) as sc:
            rdd = sc.parallelize(range(12), 3).map(_double)
            rdd.persist()
            rdd.checkpoint()
            expected = [x * 2 for x in range(12)]
            assert rdd.collect() == expected
            assert sc.last_job_metrics.checkpoint_writes == 1
            assert rdd.rdd_id not in sc.cache_manager  # LRU evicted it
            assert rdd.collect() == expected
            metrics = sc.last_job_metrics
            # restored from the checkpoint: nothing was recomputed
            assert metrics.rdds_materialized == 0
            assert metrics.checkpoint_hits == 1
            assert metrics.cached_hits == 0


class TestSupervisorUnit:
    def test_serial_path_preserves_order(self):
        sup = TaskSupervisor(_double, [3, 1, 2], retries=0)
        run = sup.run_serial()
        assert run.results == [6, 2, 4]
        assert run.attempts == 3 and run.retried == 0

    def test_pool_path_preserves_order(self):
        from concurrent.futures import ThreadPoolExecutor
        with ThreadPoolExecutor(max_workers=3) as pool:
            sup = TaskSupervisor(_double, list(range(20)), retries=0)
            run = sup.run_pool(pool.submit)
        assert run.results == [x * 2 for x in range(20)]
        assert run.attempts == 20 and run.retried == 0

    def test_policy_inactive_by_default(self):
        policy = SupervisePolicy()
        assert not policy.active
        assert not policy.monitoring
        deadline = SupervisePolicy(task_deadline_s=1.0)
        assert deadline.active and deadline.monitoring
        faulty = SupervisePolicy(
            engine_faults=FaultSchedule([FaultSpec(FAULT_KILL_WORKER, 0.5)],
                                        seed=0))
        assert faulty.active and not faulty.monitoring
