"""Tests for the CSV/GraphML exporters."""

import csv
import xml.etree.ElementTree as ET

import pytest

from repro.export import (dataframe_to_csv, edges_to_csv,
                          engagement_table_to_csv, graph_to_graphml,
                          write_csv)
from repro.graph.bipartite import BipartiteGraph


@pytest.fixture()
def toy_graph():
    return BipartiteGraph([(1, 10), (1, 11), (2, 10)])


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.csv"
        count = write_csv(str(path), [{"a": 1, "b": "x"},
                                      {"a": 2, "b": "y"}])
        assert count == 2
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0] == {"a": "1", "b": "x"}

    def test_explicit_columns_order(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(str(path), [{"z": 1, "a": 2}], columns=["z", "a"])
        header = open(path).readline().strip()
        assert header == "z,a"

    def test_empty_without_columns_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(str(tmp_path / "t.csv"), [])

    def test_extra_keys_ignored(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(str(path), [{"a": 1, "junk": 2}], columns=["a"])
        assert open(path).readline().strip() == "a"


class TestGraphExports:
    def test_graphml_structure(self, tmp_path, toy_graph):
        path = tmp_path / "g.graphml"
        edges = graph_to_graphml(toy_graph, str(path))
        assert edges == 3
        root = ET.parse(path).getroot()
        ns = "{http://graphml.graphdrawing.org/xmlns}"
        nodes = root.findall(f".//{ns}node")
        assert len(nodes) == 4  # 2 investors + 2 companies
        kinds = {n.find(f"{ns}data").text for n in nodes}
        assert kinds == {"investor", "company"}

    def test_edges_csv_sorted(self, tmp_path, toy_graph):
        path = tmp_path / "e.csv"
        assert edges_to_csv(toy_graph, str(path)) == 3
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        pairs = [(int(r["investor_id"]), int(r["company_id"]))
                 for r in rows]
        assert pairs == sorted(pairs)

    def test_real_graph_exports(self, tmp_path, investor_graph):
        path = tmp_path / "real.graphml"
        edges = graph_to_graphml(investor_graph, str(path))
        assert edges == investor_graph.num_edges


class TestAnalysisExports:
    def test_engagement_table_csv(self, tmp_path, crawled_platform):
        table = crawled_platform.run_plugin("engagement_table")
        path = tmp_path / "fig6.csv"
        count = engagement_table_to_csv(table, str(path))
        assert count == len(table.rows)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        for row in rows:
            lo = float(row["success_ci_low_pct"])
            hi = float(row["success_ci_high_pct"])
            assert lo <= float(row["success_pct"]) <= hi

    def test_dataframe_csv(self, tmp_path, crawled_platform):
        from repro.analysis.facts import build_company_facts
        facts = build_company_facts(crawled_platform.sc,
                                    crawled_platform.dfs)
        path = tmp_path / "facts.csv"
        count = dataframe_to_csv(facts, str(path))
        assert count == len(crawled_platform.world.companies)
        header = open(path).readline().strip().split(",")
        assert header == facts.columns
