"""Tests for the §5.3 metrics — including the paper's Figure 8 toys.

Figure 8a: investors {1,2,3}, companies {a,b,c};
  1 → a,b ; 2 → a,b,c ; 3 → b,c
  pairwise shared sizes: |{ab}∩{abc}|=2, |{ab}∩{bc}|=1, |{abc}∩{bc}|=2
  → average (2+2+1)/3 = 1.67; all 3 companies have ≥2 investors → 100%.

Figure 8b: investors {1,2,3}, companies {a,b,c,d};
  1 → a,b ; 2 → b,c ; 3 → d
  → average (1+0+0)/3 = 0.33; 1 of 4 companies shared → 25%.
"""

import pytest

from repro.metrics.shared import (average_shared_investment_size,
                                  community_strength,
                                  pairwise_shared_sizes,
                                  sampled_shared_sizes,
                                  shared_investment_size,
                                  shared_investor_percentage)
from repro.util.rng import RngStream

FIG_8A = {1: {"a", "b"}, 2: {"a", "b", "c"}, 3: {"b", "c"}}
FIG_8B = {1: {"a", "b"}, 2: {"b", "c"}, 3: {"d"}}


class TestPaperToyExamples:
    def test_figure_8a_average(self):
        assert average_shared_investment_size([1, 2, 3], FIG_8A) \
            == pytest.approx(5 / 3)

    def test_figure_8a_percentage(self):
        assert shared_investor_percentage([1, 2, 3], FIG_8A, k=2) == 100.0

    def test_figure_8b_average(self):
        assert average_shared_investment_size([1, 2, 3], FIG_8B) \
            == pytest.approx(1 / 3)

    def test_figure_8b_percentage(self):
        assert shared_investor_percentage([1, 2, 3], FIG_8B, k=2) == 25.0


class TestSharedSize:
    def test_pair(self):
        assert shared_investment_size({1, 2, 3}, {2, 3, 4}) == 2

    def test_disjoint(self):
        assert shared_investment_size({1}, {2}) == 0

    def test_pairwise_count(self):
        sizes = pairwise_shared_sizes([1, 2, 3], FIG_8A)
        assert len(sizes) == 3

    def test_single_member_community(self):
        assert average_shared_investment_size([1], FIG_8A) == 0.0
        assert pairwise_shared_sizes([1], FIG_8A) == []

    def test_unknown_member_treated_empty(self):
        assert average_shared_investment_size([1, 99], FIG_8A) == 0.0


class TestSharedInvestorPercentage:
    def test_k_one_counts_everything(self):
        assert shared_investor_percentage([1, 2, 3], FIG_8B, k=1) == 100.0

    def test_k_three(self):
        # only company b has 2 investors in 8b; none has 3
        assert shared_investor_percentage([1, 2, 3], FIG_8B, k=3) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            shared_investor_percentage([1], FIG_8A, k=0)

    def test_empty_community(self):
        assert shared_investor_percentage([], FIG_8A) == 0.0


class TestSampling:
    def test_sampled_sizes_count(self):
        rng = RngStream(1)
        sizes = sampled_shared_sizes([1, 2, 3], FIG_8A, 500, rng)
        assert len(sizes) == 500
        assert set(sizes) <= {0, 1, 2}

    def test_never_pairs_investor_with_itself(self):
        portfolios = {1: {"a"}, 2: set()}
        sizes = sampled_shared_sizes([1, 2], portfolios, 200, RngStream(2))
        # the only possible pair is (1,2) with overlap 0
        assert set(sizes) == {0}

    def test_too_few_investors(self):
        assert sampled_shared_sizes([1], FIG_8A, 10, RngStream(1)) == []

    def test_deterministic(self):
        a = sampled_shared_sizes([1, 2, 3], FIG_8A, 100, RngStream(7))
        b = sampled_shared_sizes([1, 2, 3], FIG_8A, 100, RngStream(7))
        assert a == b


class TestCommunityStrength:
    def test_dataclass_fields(self):
        strength = community_strength(5, [1, 2, 3], FIG_8A)
        assert strength.community_id == 5
        assert strength.size == 3
        assert strength.avg_shared_size == pytest.approx(5 / 3)
        assert strength.max_shared_size == 2
        assert strength.shared_investor_pct == 100.0

    def test_strong_beats_weak(self):
        strong = community_strength(0, [1, 2, 3], FIG_8A)
        weak = community_strength(1, [1, 2, 3], FIG_8B)
        assert strong.avg_shared_size > weak.avg_shared_size
        assert strong.shared_investor_pct > weak.shared_investor_pct
