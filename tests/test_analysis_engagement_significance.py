"""Tests for the significance layer over the Figure 6 table."""

import pytest


@pytest.fixture(scope="module")
def table(crawled_platform):
    return crawled_platform.run_plugin("engagement_table")


class TestRowCis:
    def test_ci_brackets_rate(self, table):
        for row in table.rows:
            if row.companies == 0:
                continue
            lo, hi = row.wilson_ci()
            assert lo <= row.success_pct / 100.0 <= hi

    def test_ci_narrower_for_bigger_rows(self, table):
        big = table.row("No social media presence")
        small = table.row("Facebook and Twitter")
        big_lo, big_hi = big.wilson_ci()
        small_lo, small_hi = small.wilson_ci()
        assert (big_hi - big_lo) < (small_hi - small_lo)

    def test_successes_consistent_with_pct(self, table):
        for row in table.rows:
            if row.companies:
                assert row.success_pct == pytest.approx(
                    100.0 * row.successes / row.companies)


class TestSignificance:
    def test_facebook_vs_baseline_significant(self, table):
        ratio, p_value = table.significance("Facebook only")
        assert ratio > 5
        assert p_value < 1e-6

    def test_video_vs_no_video(self, table):
        ratio, p_value = table.significance("Presence of demo video",
                                            baseline="No demo video")
        assert ratio > 4
        assert p_value < 1e-6

    def test_self_comparison_not_significant(self, table):
        ratio, p_value = table.significance(
            "Facebook only", baseline="Facebook only")
        assert ratio == pytest.approx(1.0, abs=0.05)
        assert p_value > 0.5
