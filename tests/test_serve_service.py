"""Tests for the overload-safe query service (single-request paths)."""

import pytest

from repro.net.faults import FAULT_BROWNOUT, FaultSchedule
from repro.serve.metrics import (STATUS_CACHED, STATUS_DEADLINE,
                                 STATUS_FRESH, STATUS_SHED_QUEUE,
                                 STATUS_STALE, STATUS_SUMMARY)
from repro.serve.service import ServeConfig, ServeRequest
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def dataset(crawled_platform):
    return crawled_platform.serve_dataset()


def _service(platform, faults=None, **overrides):
    return platform.query_service(config=ServeConfig(**overrides),
                                  faults=faults)


def _company_key(dataset):
    return dataset.keys_for("company")[0]


class TestQueryPaths:
    def test_company_lookup_reads_the_real_record(self, crawled_platform,
                                                  dataset):
        service = _service(crawled_platform)
        key = _company_key(dataset)
        result = service.handle(ServeRequest(kind="company", key=key))
        assert result.status == STATUS_FRESH
        assert not result.stale
        assert result.value["known"]
        assert int(result.value["record"]["id"]) == key
        assert "funding_rounds" in result.value
        assert result.latency_s > 0

    def test_repeat_is_a_cache_hit(self, crawled_platform, dataset):
        service = _service(crawled_platform)
        key = _company_key(dataset)
        first = service.handle(ServeRequest(kind="company", key=key))
        second = service.handle(ServeRequest(kind="company", key=key))
        assert second.status == STATUS_CACHED
        assert second.value == first.value
        assert second.latency_s < first.latency_s

    def test_investor_and_traversal_answers(self, crawled_platform,
                                            dataset):
        service = _service(crawled_platform)
        investor = dataset.keys_for("investor")[0]
        result = service.handle(ServeRequest(kind="investor", key=investor))
        assert result.status == STATUS_FRESH
        assert result.value["investments"] >= 1
        user = dataset.keys_for("neighborhood")[0]
        hood = service.handle(ServeRequest(kind="neighborhood", key=user,
                                           depth=2))
        assert hood.status == STATUS_FRESH
        assert hood.value["depth"] == 2
        assert hood.value["users_reached"] >= 0

    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(ConfigError):
            ServeRequest(kind="weather", key=1)


class TestDegradation:
    def test_stale_answer_during_brownout(self, crawled_platform, dataset):
        faults = FaultSchedule.none()
        # backend request index 1 (the revalidation) browns out
        faults.force_window(FAULT_BROWNOUT, start=1, span=5, duration=0.4)
        service = _service(crawled_platform, faults=faults,
                           fresh_ttl_s=0.5, stale_ttl_s=60.0)
        key = _company_key(dataset)
        first = service.handle(ServeRequest(kind="company", key=key))
        assert first.status == STATUS_FRESH
        service.clock.sleep(2.0)  # past the fresh TTL, within stale
        second = service.handle(ServeRequest(kind="company", key=key))
        assert second.status == STATUS_STALE
        assert second.stale
        assert second.value == first.value  # last good answer
        assert service.metrics.stale_served == 1

    def test_summary_floor_when_nothing_cached(self, crawled_platform,
                                               dataset):
        faults = FaultSchedule.none()
        faults.force_window(FAULT_BROWNOUT, start=0, span=5, duration=0.4)
        service = _service(crawled_platform, faults=faults)
        result = service.handle(ServeRequest(
            kind="company", key=_company_key(dataset)))
        assert result.status == STATUS_SUMMARY
        assert result.stale
        assert result.value["degraded"]
        assert result.value["total_companies"] > 0
        assert result.answered

    def test_tight_deadline_degrades_instead_of_starting(
            self, crawled_platform, dataset):
        service = _service(crawled_platform)
        result = service.handle(ServeRequest(
            kind="company", key=_company_key(dataset), deadline_s=0.001))
        # the planner refused the read: a summary fits the 1 ms budget
        assert result.status == STATUS_SUMMARY
        assert result.latency_s <= 0.001

    def test_hopeless_deadline_is_reported_honestly(self, crawled_platform,
                                                    dataset):
        service = _service(crawled_platform)
        result = service.handle(ServeRequest(
            kind="company", key=_company_key(dataset), deadline_s=1e-5))
        assert result.status == STATUS_DEADLINE
        assert not result.answered

    def test_breaker_short_circuits_a_browned_out_backend(
            self, crawled_platform, dataset):
        faults = FaultSchedule.none()
        faults.force_window(FAULT_BROWNOUT, start=0, span=50, duration=0.4)
        service = _service(crawled_platform, faults=faults,
                           breaker_failure_threshold=3)
        keys = dataset.keys_for("company")[:8]
        for key in keys:
            result = service.handle(ServeRequest(kind="company", key=key))
            assert result.status == STATUS_SUMMARY  # degraded, not dead
        counters = service.metrics.counters("interactive")
        # only the first three requests paid fault detection; the rest
        # were short-circuited by the open breaker
        assert counters.backend_faults == 3
        assert counters.breaker_short_circuits == len(keys) - 3


class TestAdmissionAccounting:
    def test_evicted_request_is_reclassified_as_shed(self, crawled_platform,
                                                     dataset):
        service = _service(crawled_platform, qps_limit=1000.0,
                           queue_depth=1)
        key = _company_key(dataset)
        own, evicted = service.submit(
            ServeRequest(kind="company", key=key, priority="bulk"))
        assert own is None and evicted is None
        own, evicted = service.submit(
            ServeRequest(kind="company", key=key, priority="interactive"))
        assert own is None
        assert evicted is not None
        assert evicted.status == STATUS_SHED_QUEUE
        metrics = service.metrics
        assert metrics.counters("bulk").admitted == 0
        assert metrics.counters("bulk").shed_queue == 1
        assert metrics.counters("interactive").admitted == 1

    def test_config_validation(self, crawled_platform):
        with pytest.raises(ConfigError):
            ServeConfig(qps_limit=0.0)
        with pytest.raises(ConfigError):
            ServeConfig(queue_depth=0)
        with pytest.raises(ConfigError):
            ServeConfig(fresh_ttl_s=10.0, stale_ttl_s=1.0)
