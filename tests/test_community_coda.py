"""Tests for the CoDA reimplementation.

The planted-recovery tests use a synthetic bipartite graph with two
clean co-investment blocks plus noise — CoDA must separate them.
"""

import numpy as np
import pytest

from repro.community.coda import CoDA
from repro.graph.bipartite import BipartiteGraph
from repro.util.rng import RngStream


def _two_block_graph(noise_edges: int = 10, seed: int = 0):
    """Investors 0-9 invest in companies 100-109; 20-29 in 200-209."""
    rng = RngStream(seed)
    edges = []
    for u in range(10):
        for c in range(100, 110):
            if rng.bernoulli(0.6):
                edges.append((u, c))
    for u in range(20, 30):
        for c in range(200, 210):
            if rng.bernoulli(0.6):
                edges.append((u, c))
    for _ in range(noise_edges):
        edges.append((rng.randint(0, 29), rng.randint(100, 209)))
    return BipartiteGraph(edges), {frozenset(range(10)),
                                   frozenset(range(20, 30))}


class TestPlantedRecovery:
    def test_two_blocks_recovered(self):
        graph, truth = _two_block_graph()
        result = CoDA(num_communities=2, max_iters=40, seed=1).fit(graph)
        assert result.num_communities == 2
        detected = [frozenset(m) for m in
                    result.investor_communities.values()]
        for true_block in truth:
            best = max(len(d & true_block) / len(d | true_block)
                       for d in detected)
            assert best > 0.7, f"block {sorted(true_block)[:3]}... lost"

    def test_companies_assigned_too(self):
        graph, _truth = _two_block_graph()
        result = CoDA(num_communities=2, max_iters=40, seed=1).fit(graph)
        block_a = {c for c in range(100, 110)}
        found = [frozenset(m) for m in result.company_communities.values()]
        assert any(len(f & block_a) >= 6 for f in found)

    def test_likelihood_is_finite_and_improves(self):
        graph, _truth = _two_block_graph()
        short = CoDA(num_communities=2, max_iters=2, seed=1).fit(graph)
        long = CoDA(num_communities=2, max_iters=40, seed=1).fit(graph)
        assert np.isfinite(short.log_likelihood)
        assert long.log_likelihood >= short.log_likelihood - 1e-6


class TestMechanics:
    def test_deterministic(self):
        graph, _ = _two_block_graph()
        a = CoDA(num_communities=2, seed=5).fit(graph)
        b = CoDA(num_communities=2, seed=5).fit(graph)
        assert a.investor_communities == b.investor_communities

    def test_seed_changes_result_possible(self):
        graph, _ = _two_block_graph(noise_edges=40)
        a = CoDA(num_communities=3, seed=1).fit(graph)
        assert a.num_communities >= 1  # smoke: different C still works

    def test_affiliations_nonnegative(self):
        graph, _ = _two_block_graph()
        result = CoDA(num_communities=2, seed=1).fit(graph)
        assert (result.F >= 0).all()
        assert (result.H >= 0).all()

    def test_min_community_size_enforced(self):
        graph, _ = _two_block_graph()
        result = CoDA(num_communities=2, seed=1,
                      min_community_size=3).fit(graph)
        assert all(len(m) >= 3 for m in result.investor_communities.values())

    def test_invalid_num_communities(self):
        with pytest.raises(ValueError):
            CoDA(num_communities=0)

    def test_average_community_size(self):
        graph, _ = _two_block_graph()
        result = CoDA(num_communities=2, seed=1).fit(graph)
        sizes = [len(m) for m in result.investor_communities.values()]
        assert result.average_community_size == pytest.approx(
            float(np.mean(sizes)))

    def test_sorted_by_size(self):
        graph, _ = _two_block_graph()
        result = CoDA(num_communities=2, seed=1).fit(graph)
        ordered = result.communities_sorted_by_size()
        sizes = [len(m) for _cid, m in ordered]
        assert sizes == sorted(sizes, reverse=True)

    def test_on_real_world_graph(self, investor_graph):
        filtered = investor_graph.filter_investors(4)
        if filtered.num_investors < 8:
            pytest.skip("tiny world too small for this seed")
        result = CoDA(num_communities=4, max_iters=20, seed=2).fit(filtered)
        assert result.num_communities >= 1
        members = set().union(*result.investor_communities.values())
        assert members <= set(filtered.investors)
